//! Shared trace/report plumbing for the experiment binaries.
//!
//! All three traced binaries (`simulate`, `fig4`, `fig5`) funnel through
//! these helpers so trace files and analysis reports come out identical
//! no matter which binary produced them.

use pms_analyze::{build_report, Report, ReportConfig};
use pms_trace::{
    series_from_records, series_to_csv, write_chrome_trace, write_jsonl, AlertRules,
    SnapshotConfig, TraceRecord, Tracer,
};
use std::io;

/// Explicitly flushes a tracer's buffered output, treating failure as a
/// CLI error. Every traced binary calls this before its final
/// `std::process::exit`-reachable reporting: destructors do flush on a
/// clean drop, but `process::exit` skips them, and a drop can only
/// swallow the I/O error this surfaces.
pub fn finish(tracer: &mut Tracer) {
    tracer.finish().unwrap_or_else(|e| {
        eprintln!("cannot flush tracer: {e}");
        std::process::exit(1);
    });
}

/// Handles the figure binaries' `--trace OUT` / `--report OUT` /
/// `--alerts RULES.txt` / `--timeseries-csv OUT.csv` flags: when any is
/// present in `argv`, `run` re-runs the figure's representative cell
/// once with the given tracer attached — the snapshot/alert pipeline
/// over an in-memory sink, so traces and reports carry the per-window
/// metrics-snapshot series (and any alert raises) — and the records are
/// written as a trace file, analysis report, and/or time-series CSV.
/// `label` names the cell in the progress lines.
pub fn trace_and_report_flags(
    argv: &[String],
    label: &str,
    run: impl FnOnce(Tracer) -> Vec<TraceRecord>,
) {
    let flag_value = |flag: &str| {
        argv.iter().position(|a| a == flag).map(|i| {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a path");
                std::process::exit(2);
            })
        })
    };
    let trace = flag_value("--trace");
    let report = flag_value("--report");
    let alerts = flag_value("--alerts");
    let timeseries_csv = flag_value("--timeseries-csv");
    if trace.is_none() && report.is_none() && alerts.is_none() && timeseries_csv.is_none() {
        return;
    }
    let rules = alerts.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read alert rules {path}: {e}");
            std::process::exit(2);
        });
        AlertRules::parse(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        })
    });
    let tracer = Tracer::pipeline(SnapshotConfig::default(), rules, Tracer::vec());
    let records = run(tracer);
    // I/O failures here are CLI errors (bad path, full disk), not bugs:
    // report them and exit non-zero rather than panicking.
    if let Some(path) = trace {
        write_trace_file(&path, &records).unwrap_or_else(|e| {
            eprintln!("cannot write trace {path}: {e}");
            std::process::exit(1);
        });
        println!("trace: {label}, {} events -> {path}", records.len());
    }
    if let Some(path) = report {
        write_report_file(&path, &records, &ReportConfig::default()).unwrap_or_else(|e| {
            eprintln!("cannot write report {path}: {e}");
            std::process::exit(1);
        });
        println!("report: {label} -> {path}");
    }
    if let Some(path) = timeseries_csv {
        let series = series_from_records(&records);
        std::fs::write(&path, series_to_csv(&series)).unwrap_or_else(|e| {
            eprintln!("cannot write time series {path}: {e}");
            std::process::exit(1);
        });
        println!("time series: {label}, {} window(s) -> {path}", series.len());
    }
    if alerts.is_some() {
        let a = pms_analyze::alerts(&records);
        println!("alerts: {label}, {} raised, {} cleared", a.raises, a.clears);
    }
}

/// Writes a trace file in the format implied by the path's extension:
/// `.jsonl` gets the line-per-record replay format (readable by the
/// `analyze` binary), anything else the Chrome Trace Event format
/// (loadable in `chrome://tracing` / Perfetto).
pub fn write_trace_file(path: &str, records: &[TraceRecord]) -> io::Result<()> {
    if path.ends_with(".jsonl") {
        write_jsonl(path, records)
    } else {
        write_chrome_trace(path, records)
    }
}

/// Builds the standard analysis report over `records` and writes its
/// JSON rendering to `path`. The written bytes are identical to what
/// `analyze` produces when replaying the same records from a `.jsonl`
/// trace (reports are pure functions of the record stream).
pub fn write_report_file(
    path: &str,
    records: &[TraceRecord],
    cfg: &ReportConfig,
) -> io::Result<Report> {
    let report = build_report(records, cfg);
    std::fs::write(path, report.to_json().render_pretty())?;
    Ok(report)
}
