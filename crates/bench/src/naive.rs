//! Naive per-bit reference kernels — the "before" side of the perf
//! harness.
//!
//! Each function here evaluates one hot-path kernel the way the original
//! scalar model did: one `get`/`set` per cell, visiting the full `N x N`
//! grid. The word-parallel library implementations in `pms-bitmat` and
//! `pms-sched` are benchmarked against these (see `benches/` and the
//! `bench_baseline` binary that writes `BENCH_*.json`), and equivalence
//! is proptest-enforced in the respective crates' test suites. Keep these
//! scalar on purpose: they are the baseline, not code to optimize.

use pms_bitmat::{BitMatrix, BitVec};
use pms_sched::{sl_cell, CellAction, CellInput, Priority, SlPassOutput};

/// Per-bit row OR reduction (`AI` vector): one `get` per cell.
pub fn row_or(m: &BitMatrix) -> BitVec {
    let mut v = BitVec::new(m.rows());
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            if m.get(r, c) {
                v.set(r, true);
                break;
            }
        }
    }
    v
}

/// Per-bit column OR reduction (`AO` vector): one `get` per cell.
pub fn col_or(m: &BitMatrix) -> BitVec {
    let mut v = BitVec::new(m.cols());
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            if m.get(r, c) {
                v.set(c, true);
            }
        }
    }
    v
}

/// Per-bit union `B* = OR of B^(i)`: one `get`/`set` per cell per matrix.
///
/// # Panics
/// Panics on an empty iterator, like [`BitMatrix::union`].
pub fn union<'a, I: IntoIterator<Item = &'a BitMatrix>>(mats: I) -> BitMatrix {
    let mut it = mats.into_iter();
    let first = it.next().expect("union of zero matrices");
    let mut acc = BitMatrix::new(first.rows(), first.cols());
    for m in std::iter::once(first).chain(it) {
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                if m.get(r, c) {
                    acc.set(r, c, true);
                }
            }
        }
    }
    acc
}

/// Per-bit conflict test: do `a` and `b` share any set cell?
pub fn intersects(a: &BitMatrix, b: &BitMatrix) -> bool {
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            if a.get(r, c) && b.get(r, c) {
                return true;
            }
        }
    }
    false
}

/// Per-bit population count of one row.
pub fn row_count_ones(m: &BitMatrix, r: usize) -> usize {
    (0..m.cols()).filter(|&c| m.get(r, c)).count()
}

/// Per-bit toggle apply `B^(s) ^= T`: one `get`/`toggle` per set cell,
/// found by scanning the full grid.
pub fn xor_assign(b_s: &mut BitMatrix, toggles: &BitMatrix) {
    for r in 0..b_s.rows() {
        for c in 0..b_s.cols() {
            if toggles.get(r, c) {
                b_s.toggle(r, c);
            }
        }
    }
}

/// The fully scalar SL array pass: visit every one of the `N x N` cells
/// in rotated ripple order and evaluate `sl_cell` only where `L = 1`.
///
/// Output — including `cells_visited` — is identical to
/// [`pms_sched::sl_pass`] and `pms_sched::slarray::reference::sl_pass`;
/// the cost is the `O(N^2)` grid walk with a `get` per cell.
pub fn sl_pass(l: &BitMatrix, b_s: &BitMatrix, priority: Priority) -> SlPassOutput {
    let n = b_s.rows();
    assert_eq!(b_s.cols(), n, "B^(s) must be square");
    assert_eq!((l.rows(), l.cols()), (n, n), "L must match B^(s)");

    let mut col_busy = col_or(b_s);
    let row_busy_init = row_or(b_s);

    let mut toggles = BitMatrix::new(n, n);
    let mut established = Vec::new();
    let mut released = Vec::new();
    let mut denied = Vec::new();
    let mut cells_visited = 0usize;

    for du in 0..n {
        let u = (priority.row + du) % n;
        let mut d = row_busy_init.get(u);
        for dv in 0..n {
            let v = (priority.col + dv) % n;
            if !l.get(u, v) {
                continue;
            }
            cells_visited += 1;
            let out = sl_cell(CellInput {
                l: true,
                a: col_busy.get(v),
                d,
                b_s: b_s.get(u, v),
            });
            col_busy.set(v, out.a_next);
            d = out.d_next;
            if out.t {
                toggles.set(u, v, true);
            }
            match out.action {
                CellAction::Establish => established.push((u, v)),
                CellAction::Release => released.push((u, v)),
                CellAction::Denied => denied.push((u, v)),
                CellAction::NoChange => unreachable!("only L=1 cells are evaluated"),
            }
        }
    }

    SlPassOutput {
        toggles,
        established,
        released,
        denied,
        cells_visited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse(n: usize) -> BitMatrix {
        BitMatrix::from_pairs(n, n, (0..n).step_by(9).map(|u| (u, (u * 7 + 3) % n)))
    }

    #[test]
    fn naive_kernels_match_library_on_mixed_sizes() {
        for n in [5usize, 64, 70, 128] {
            let a = sparse(n);
            let b = BitMatrix::from_pairs(n, n, (0..n).map(|u| (u, (u + 1) % n)));
            assert_eq!(
                row_or(&a).iter_ones().collect::<Vec<_>>(),
                a.row_or().iter_ones().collect::<Vec<_>>()
            );
            assert_eq!(
                col_or(&a).iter_ones().collect::<Vec<_>>(),
                a.col_or().iter_ones().collect::<Vec<_>>()
            );
            assert_eq!(union([&a, &b]), BitMatrix::union([&a, &b]));
            assert_eq!(intersects(&a, &b), a.intersects(&b));
            for r in 0..n {
                assert_eq!(row_count_ones(&a, r), a.row_count_ones(r));
            }
            let mut x = a.clone();
            let mut y = a.clone();
            x.xor_assign(&b);
            xor_assign(&mut y, &b);
            assert_eq!(x, y);
        }
    }

    #[test]
    fn naive_sl_pass_matches_fast_pass() {
        for n in [8usize, 70, 128] {
            let l = sparse(n);
            let b_s = BitMatrix::from_pairs(n, n, (0..n / 2).map(|u| (u, (u + 2) % n)));
            for pri in [Priority::default(), Priority { row: n - 1, col: 3 }] {
                let naive = sl_pass(&l, &b_s, pri);
                let fast = pms_sched::sl_pass(&l, &b_s, pri);
                assert_eq!(naive.toggles, fast.toggles);
                assert_eq!(naive.established, fast.established);
                assert_eq!(naive.released, fast.released);
                assert_eq!(naive.denied, fast.denied);
                assert_eq!(naive.cells_visited, fast.cells_visited);
            }
        }
    }
}
