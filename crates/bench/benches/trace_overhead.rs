//! Criterion bench: tracing and profiling overhead on the TDM hot loop.
//!
//! Compares the default [`Tracer::Null`] (every `emit` site is guarded by
//! `tracer.enabled()`, so disabled tracing builds no event payloads)
//! against a [`RingTracer`] that retains the most recent 4096 records,
//! and against a Null-sink run with the kernel profiler
//! ([`pms_trace::prof`]) switched on. The observability contract is that
//! the Null case stays within 1 % of an untraced run (`Paradigm::run`
//! *is* the untraced baseline here since it delegates to `run_traced`
//! with `Tracer::Null`) and that enabling the profiler on top costs at
//! most 2 % — the gate the `overhead_gate` integration test asserts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pms_sim::{Paradigm, PredictorKind, SimParams};
use pms_trace::{prof, Tracer};
use pms_workloads::{ordered_mesh, MeshSpec};
use std::hint::black_box;

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("tdm_trace_overhead");
    group.sample_size(20);
    let mesh = MeshSpec::for_ports(32);
    let workload = ordered_mesh(mesh, 64, 2, 500, 100);
    let params = SimParams::default().with_ports(32);
    let paradigm = Paradigm::DynamicTdm(PredictorKind::Drop);
    group.throughput(Throughput::Elements(workload.message_count() as u64));

    // (name, tracer constructor, profiler on?)
    type MakeTracer = fn() -> Tracer;
    let cases: [(&str, MakeTracer, bool); 4] = [
        ("null", || Tracer::Null, false),
        ("ring4096", || Tracer::ring(4096), false),
        ("null+prof", || Tracer::Null, true),
        // Snapshot pipeline at the default slot-window cadence stacked
        // over the same ring: the marginal cost of the time-series
        // collector on a traced run.
        (
            "pipeline+ring4096",
            || {
                Tracer::pipeline(
                    pms_trace::SnapshotConfig::default(),
                    None,
                    Tracer::ring(4096),
                )
            },
            false,
        ),
    ];
    for (name, make, profiled) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &make, |b, make| {
            prof::reset();
            prof::set_enabled(profiled);
            b.iter(|| {
                let (stats, tracer) =
                    paradigm.run_traced(black_box(&workload), black_box(&params), make());
                black_box((stats.delivered_bytes, tracer.records().len()))
            });
            prof::set_enabled(false);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
