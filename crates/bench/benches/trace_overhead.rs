//! Criterion bench: tracing overhead on the TDM hot loop.
//!
//! Compares the default [`Tracer::Null`] (every `emit` site is guarded by
//! `tracer.enabled()`, so disabled tracing builds no event payloads)
//! against a [`RingTracer`] that retains the most recent 4096 records.
//! The observability contract is that the Null case stays within 1 % of
//! an untraced run; `Paradigm::run` *is* the untraced baseline here since
//! it delegates to `run_traced` with `Tracer::Null`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pms_sim::{Paradigm, PredictorKind, SimParams};
use pms_trace::Tracer;
use pms_workloads::{ordered_mesh, MeshSpec};
use std::hint::black_box;

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("tdm_trace_overhead");
    group.sample_size(20);
    let mesh = MeshSpec::for_ports(32);
    let workload = ordered_mesh(mesh, 64, 2, 500, 100);
    let params = SimParams::default().with_ports(32);
    let paradigm = Paradigm::DynamicTdm(PredictorKind::Drop);
    group.throughput(Throughput::Elements(workload.message_count() as u64));

    type MakeTracer = fn() -> Tracer;
    let tracers: [(&str, MakeTracer); 2] = [
        ("null", || Tracer::Null),
        ("ring4096", || Tracer::ring(4096)),
    ];
    for (name, make) in tracers {
        group.bench_with_input(BenchmarkId::from_parameter(name), &make, |b, make| {
            b.iter(|| {
                let (stats, tracer) =
                    paradigm.run_traced(black_box(&workload), black_box(&params), make());
                black_box((stats.delivered_bytes, tracer.records().len()))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
