//! Criterion bench: SL scheduling-pass throughput versus system size —
//! the software companion to Table 3 (the hardware pass is one SL clock;
//! here we measure the model's cost so large sweeps stay fast).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pms_bitmat::BitMatrix;
use pms_sched::{Scheduler, SchedulerConfig};
use std::hint::black_box;

fn dense_requests(n: usize) -> BitMatrix {
    // Every input requests four destinations — mesh-like pressure.
    BitMatrix::from_pairs(
        n,
        n,
        (0..n).flat_map(|u| (1..5).map(move |d| (u, (u + d) % n))),
    )
}

fn bench_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("sl_pass");
    for n in [16usize, 32, 64, 128, 256] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, &n| {
            let requests = dense_requests(n);
            let mut sched = Scheduler::new(SchedulerConfig::new(n, 4));
            b.iter(|| {
                let report = sched.pass(black_box(&requests));
                black_box(report.established.len());
            });
        });
        group.bench_with_input(BenchmarkId::new("quiescent", n), &n, |b, &n| {
            // Steady state: everything established, nothing to change.
            let requests = BitMatrix::from_pairs(n, n, (0..n).map(|u| (u, (u + 1) % n)));
            let mut sched = Scheduler::new(SchedulerConfig::new(n, 4));
            for _ in 0..4 {
                sched.pass(&requests);
            }
            b.iter(|| {
                let report = sched.pass(black_box(&requests));
                black_box(report.slot);
            });
        });
    }
    group.finish();
}

fn bench_sl_pass_kernel(c: &mut Criterion) {
    // The raw combinational pass, isolated from the scheduler wrapper:
    // fast word-scanning `sl_pass` vs the gather-and-sort `reference`
    // module vs the fully per-bit grid walk (`pms_bench::naive`). The
    // sparse case is the idle-heavy steady state the simulators hit most.
    use pms_sched::{sl_pass, slarray::reference, Priority};
    let mut group = c.benchmark_group("sl_pass_kernel");
    for n in [64usize, 128, 256] {
        // Sparse: a handful of change requests across the whole array.
        let sparse_l = BitMatrix::from_pairs(n, n, (0..8).map(|i| (i * n / 8, (i * 13 + 1) % n)));
        // Dense: every input has a change request on four columns.
        let dense_l = dense_requests(n);
        let b_s = BitMatrix::from_pairs(n, n, (0..n / 3).map(|u| (3 * u % n, (3 * u + 5) % n)));
        let pri = Priority { row: n / 2, col: 7 };
        for (tag, l) in [("sparse", &sparse_l), ("dense", &dense_l)] {
            group.bench_with_input(BenchmarkId::new(format!("fast_{tag}"), n), l, |bch, l| {
                bch.iter(|| black_box(sl_pass(black_box(l), black_box(&b_s), pri)));
            });
            group.bench_with_input(
                BenchmarkId::new(format!("reference_{tag}"), n),
                l,
                |bch, l| {
                    bch.iter(|| black_box(reference::sl_pass(black_box(l), black_box(&b_s), pri)));
                },
            );
            group.bench_with_input(BenchmarkId::new(format!("naive_{tag}"), n), l, |bch, l| {
                bch.iter(|| {
                    black_box(pms_bench::naive::sl_pass(
                        black_box(l),
                        black_box(&b_s),
                        pri,
                    ))
                });
            });
        }
    }
    group.finish();
}

fn bench_flush(c: &mut Criterion) {
    c.bench_function("flush_dynamic_128", |b| {
        let n = 128;
        let requests = dense_requests(n);
        let mut sched = Scheduler::new(SchedulerConfig::new(n, 4));
        b.iter(|| {
            sched.pass(&requests);
            sched.flush_dynamic();
        });
    });
}

criterion_group!(benches, bench_pass, bench_sl_pass_kernel, bench_flush);
criterion_main!(benches);
