//! Criterion bench: SL scheduling-pass throughput versus system size —
//! the software companion to Table 3 (the hardware pass is one SL clock;
//! here we measure the model's cost so large sweeps stay fast).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pms_bitmat::BitMatrix;
use pms_sched::{Scheduler, SchedulerConfig};
use std::hint::black_box;

fn dense_requests(n: usize) -> BitMatrix {
    // Every input requests four destinations — mesh-like pressure.
    BitMatrix::from_pairs(
        n,
        n,
        (0..n).flat_map(|u| (1..5).map(move |d| (u, (u + d) % n))),
    )
}

fn bench_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("sl_pass");
    for n in [16usize, 32, 64, 128, 256] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, &n| {
            let requests = dense_requests(n);
            let mut sched = Scheduler::new(SchedulerConfig::new(n, 4));
            b.iter(|| {
                let report = sched.pass(black_box(&requests));
                black_box(report.established.len());
            });
        });
        group.bench_with_input(BenchmarkId::new("quiescent", n), &n, |b, &n| {
            // Steady state: everything established, nothing to change.
            let requests = BitMatrix::from_pairs(n, n, (0..n).map(|u| (u, (u + 1) % n)));
            let mut sched = Scheduler::new(SchedulerConfig::new(n, 4));
            for _ in 0..4 {
                sched.pass(&requests);
            }
            b.iter(|| {
                let report = sched.pass(black_box(&requests));
                black_box(report.slot);
            });
        });
    }
    group.finish();
}

fn bench_flush(c: &mut Criterion) {
    c.bench_function("flush_dynamic_128", |b| {
        let n = 128;
        let requests = dense_requests(n);
        let mut sched = Scheduler::new(SchedulerConfig::new(n, 4));
        b.iter(|| {
            sched.pass(&requests);
            sched.flush_dynamic();
        });
    });
}

criterion_group!(benches, bench_pass, bench_flush);
criterion_main!(benches);
