//! Criterion bench: end-to-end simulator throughput for each switching
//! paradigm on a fixed 32-processor mesh round — the cost of one Figure-4
//! grid cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pms_fabric::TorusNetwork;
use pms_sim::{MultihopWormholeSim, Paradigm, PredictorKind, SimParams};
use pms_workloads::{ordered_mesh, uniform, MeshSpec};
use std::hint::black_box;

fn bench_paradigms(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_mesh32");
    group.sample_size(20);
    let mesh = MeshSpec::for_ports(32);
    let workload = ordered_mesh(mesh, 64, 2, 500, 100);
    let params = SimParams::default().with_ports(32);
    group.throughput(Throughput::Elements(workload.message_count() as u64));
    for paradigm in [
        Paradigm::Wormhole,
        Paradigm::Circuit,
        Paradigm::DynamicTdm(PredictorKind::Drop),
        Paradigm::PreloadTdm,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(paradigm.label()),
            &paradigm,
            |b, paradigm| {
                b.iter(|| {
                    let stats = paradigm.run(black_box(&workload), black_box(&params));
                    black_box(stats.delivered_bytes)
                });
            },
        );
    }
    group.finish();
}

fn bench_multihop(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_multihop32");
    group.sample_size(20);
    let workload = uniform(32, 128, 8, 3);
    let params = SimParams::default().with_ports(32);
    group.throughput(Throughput::Elements(workload.message_count() as u64));
    group.bench_function("torus_4x4", |b| {
        b.iter(|| {
            let sim = MultihopWormholeSim::new(
                black_box(&workload),
                black_box(&params),
                TorusNetwork::new(4, 4, 2),
            );
            black_box(sim.run().delivered_bytes)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_paradigms, bench_multihop);
criterion_main!(benches);
