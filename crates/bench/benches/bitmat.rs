//! Criterion bench: the word-parallel bit-matrix kernel — the operations
//! the scheduler executes on every SL clock (`B*` union, Table-1 `L`
//! computation, partial-permutation checks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pms_bitmat::BitMatrix;
use std::hint::black_box;

fn dense(n: usize, stride: usize) -> BitMatrix {
    BitMatrix::from_pairs(n, n, (0..n).map(|u| (u, (u * stride + 1) % n)))
}

fn bench_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmat_union");
    for n in [64usize, 128, 256] {
        let mats: Vec<BitMatrix> = (1..5).map(|s| dense(n, s)).collect();
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &mats, |b, mats| {
            b.iter(|| black_box(BitMatrix::union(black_box(mats).iter())));
        });
    }
    group.finish();
}

fn bench_presched_formula(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmat_presched_l");
    for n in [64usize, 128, 256] {
        let r = dense(n, 3);
        let b_star = dense(n, 5);
        let b_s = BitMatrix::square(n);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                black_box(BitMatrix::zip3_with(
                    black_box(&r),
                    black_box(&b_star),
                    black_box(&b_s),
                    |rw, bst, bsw| (!rw & bsw) | (rw & !bst),
                ))
            });
        });
    }
    group.finish();
}

fn bench_reductions_word_vs_naive(c: &mut Criterion) {
    // The PR-4 headline comparison: word-parallel row/col OR reductions
    // and conflict tests against the per-bit reference implementations
    // (`pms_bench::naive`). `bench_baseline` records the same pairs into
    // `BENCH_pr4.json`.
    let mut group = c.benchmark_group("bitmat_reduction");
    for n in [64usize, 128, 256] {
        let m = dense(n, 3);
        let other = dense(n, 5);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::new("col_or_word", n), &m, |b, m| {
            b.iter(|| black_box(black_box(m).col_or()));
        });
        group.bench_with_input(BenchmarkId::new("col_or_naive", n), &m, |b, m| {
            b.iter(|| black_box(pms_bench::naive::col_or(black_box(m))));
        });
        group.bench_with_input(BenchmarkId::new("row_or_word", n), &m, |b, m| {
            b.iter(|| black_box(black_box(m).row_or()));
        });
        group.bench_with_input(BenchmarkId::new("row_or_naive", n), &m, |b, m| {
            b.iter(|| black_box(pms_bench::naive::row_or(black_box(m))));
        });
        group.bench_with_input(BenchmarkId::new("intersects_word", n), &m, |b, m| {
            b.iter(|| black_box(black_box(m).intersects(black_box(&other))));
        });
        group.bench_with_input(BenchmarkId::new("intersects_naive", n), &m, |b, m| {
            b.iter(|| {
                black_box(pms_bench::naive::intersects(
                    black_box(m),
                    black_box(&other),
                ))
            });
        });
    }
    group.finish();
}

fn bench_permutation_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmat_perm_check");
    for n in [128usize, 256] {
        let m = dense(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| black_box(m.is_partial_permutation()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_union,
    bench_presched_formula,
    bench_reductions_word_vs_naive,
    bench_permutation_check
);
criterion_main!(benches);
