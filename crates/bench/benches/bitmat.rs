//! Criterion bench: the word-parallel bit-matrix kernel — the operations
//! the scheduler executes on every SL clock (`B*` union, Table-1 `L`
//! computation, partial-permutation checks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pms_bitmat::BitMatrix;
use std::hint::black_box;

fn dense(n: usize, stride: usize) -> BitMatrix {
    BitMatrix::from_pairs(n, n, (0..n).map(|u| (u, (u * stride + 1) % n)))
}

fn bench_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmat_union");
    for n in [64usize, 128, 256] {
        let mats: Vec<BitMatrix> = (1..5).map(|s| dense(n, s)).collect();
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &mats, |b, mats| {
            b.iter(|| black_box(BitMatrix::union(black_box(mats).iter())));
        });
    }
    group.finish();
}

fn bench_presched_formula(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmat_presched_l");
    for n in [64usize, 128, 256] {
        let r = dense(n, 3);
        let b_star = dense(n, 5);
        let b_s = BitMatrix::square(n);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| {
                black_box(BitMatrix::zip3_with(
                    black_box(&r),
                    black_box(&b_star),
                    black_box(&b_s),
                    |rw, bst, bsw| (!rw & bsw) | (rw & !bst),
                ))
            });
        });
    }
    group.finish();
}

fn bench_permutation_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmat_perm_check");
    for n in [128usize, 256] {
        let m = dense(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| black_box(m.is_partial_permutation()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_union,
    bench_presched_formula,
    bench_permutation_check
);
criterion_main!(benches);
