//! Criterion bench: the simulator idle time skip on sparse workloads.
//!
//! Sparse workloads — long compute gaps between messages — are exactly
//! where the step-by-step simulator burns wall-clock ticking empty
//! slot/pass boundaries. The skip must make those runs cheap while
//! producing byte-identical outputs (enforced by `tests/idle_skip.rs` in
//! `pms-sim` and the CI trace check); this bench tracks the wall-clock
//! side of that contract.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pms_sim::{Paradigm, PredictorKind, SimParams};
use pms_workloads::{Program, Workload};
use std::hint::black_box;

/// `msgs` messages spread over four senders, `gap_ns` of compute between
/// consecutive sends on each.
fn sparse_workload(ports: usize, msgs: usize, gap_ns: u64) -> Workload {
    let mut programs = vec![Program::new(); ports];
    for m in 0..msgs {
        programs[m % 4].send((m + 1) % ports, 64).delay(gap_ns);
    }
    Workload::new("sparse", ports, programs)
}

fn bench_sparse_tdm(c: &mut Criterion) {
    let ports = 128;
    let w = sparse_workload(ports, 8, 200_000);
    let mut group = c.benchmark_group("idle_skip_sparse_tdm");
    group.sample_size(10);
    for (label, skip) in [("skip", true), ("seed_path", false)] {
        let params = SimParams::default().with_ports(ports).with_idle_skip(skip);
        group.bench_with_input(BenchmarkId::new(label, ports), &w, |b, w| {
            b.iter(|| {
                black_box(Paradigm::DynamicTdm(PredictorKind::Drop).run(black_box(w), &params))
            });
        });
    }
    group.finish();
}

fn bench_sparse_circuit(c: &mut Criterion) {
    let ports = 128;
    let w = sparse_workload(ports, 8, 200_000);
    let mut group = c.benchmark_group("idle_skip_sparse_circuit");
    group.sample_size(10);
    for (label, skip) in [("skip", true), ("seed_path", false)] {
        let params = SimParams::default().with_ports(ports).with_idle_skip(skip);
        group.bench_with_input(BenchmarkId::new(label, ports), &w, |b, w| {
            b.iter(|| black_box(Paradigm::Circuit.run(black_box(w), &params)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sparse_tdm, bench_sparse_circuit);
criterion_main!(benches);
