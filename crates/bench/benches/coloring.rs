//! Criterion bench: TDM decomposition (bipartite edge coloring) — greedy
//! first-fit versus the exact alternating-path algorithm, on random and
//! structured working sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pms_compile::{exact_coloring, greedy_coloring, WorkingSet};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::hint::black_box;

fn random_working_set(ports: usize, edges: usize, seed: u64) -> WorkingSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ws = WorkingSet::new(ports);
    while ws.len() < edges {
        ws.insert(rng.gen_range(0..ports), rng.gen_range(0..ports));
    }
    ws
}

fn all_to_all(ports: usize) -> WorkingSet {
    WorkingSet::from_pairs(
        ports,
        (0..ports).flat_map(|u| (0..ports).filter(move |&v| v != u).map(move |v| (u, v))),
    )
}

fn bench_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring_random");
    for ports in [32usize, 128] {
        let edges = ports * 4;
        let ws = random_working_set(ports, edges, 99);
        group.throughput(Throughput::Elements(edges as u64));
        group.bench_with_input(BenchmarkId::new("greedy", ports), &ws, |b, ws| {
            b.iter(|| black_box(greedy_coloring(black_box(ws))).len());
        });
        group.bench_with_input(BenchmarkId::new("exact", ports), &ws, |b, ws| {
            b.iter(|| black_box(exact_coloring(black_box(ws))).len());
        });
    }
    group.finish();
}

fn bench_all_to_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring_all_to_all");
    let ws = all_to_all(64);
    group.throughput(Throughput::Elements(ws.len() as u64));
    group.bench_function("greedy_64", |b| {
        b.iter(|| black_box(greedy_coloring(black_box(&ws))).len());
    });
    group.bench_function("exact_64", |b| {
        b.iter(|| black_box(exact_coloring(black_box(&ws))).len());
    });
    group.finish();
}

criterion_group!(benches, bench_random, bench_all_to_all);
criterion_main!(benches);
