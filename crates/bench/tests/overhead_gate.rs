//! The observability overhead gate: enabling the kernel profiler
//! ([`pms_trace::prof`]) on a Null-sink run must cost at most 2 %.
//!
//! This is a wall-clock timing test, so it is `#[ignore]`d by default
//! and run explicitly — in release mode, on an otherwise idle machine —
//! by the CI bench-smoke job:
//!
//! ```text
//! cargo test --release -p pms-bench --test overhead_gate -- --ignored
//! ```
//!
//! Methodology: the profiled and unprofiled runs are interleaved (so
//! slow drift in machine load hits both arms equally) and compared by
//! median-of-N, which discards scheduler hiccups that a mean would
//! absorb. The workload is sized so one run takes a few milliseconds —
//! long enough that timer granularity is noise, short enough for CI.

use pms_sim::{Paradigm, PredictorKind, SimParams};
use pms_trace::{prof, Tracer};
use pms_workloads::{ordered_mesh, MeshSpec};
use std::hint::black_box;
use std::time::Instant;

/// Allowed profiler overhead on the Null-sink path: 2 %.
const MAX_OVERHEAD: f64 = 1.02;
/// Timed run pairs; medians are taken over this many samples per arm.
const SAMPLES: usize = 15;

fn timed_run(paradigm: &Paradigm, w: &pms_workloads::Workload, p: &SimParams) -> f64 {
    let start = Instant::now();
    let (stats, _) = paradigm.run_traced(black_box(w), black_box(p), Tracer::Null);
    black_box(stats.delivered_bytes);
    start.elapsed().as_secs_f64()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

#[test]
#[ignore = "wall-clock gate; run explicitly with --release (see CI bench-smoke)"]
fn profiler_overhead_on_null_sink_is_within_two_percent() {
    let mesh = MeshSpec::for_ports(64);
    let workload = ordered_mesh(mesh, 64, 4, 500, 100);
    let params = SimParams::default().with_ports(64);
    let paradigm = Paradigm::DynamicTdm(PredictorKind::Timeout(400));

    // Warm caches and the allocator before timing anything.
    for _ in 0..3 {
        timed_run(&paradigm, &workload, &params);
    }

    let (mut off, mut on) = (Vec::new(), Vec::new());
    for _ in 0..SAMPLES {
        prof::set_enabled(false);
        off.push(timed_run(&paradigm, &workload, &params));
        prof::reset();
        prof::set_enabled(true);
        on.push(timed_run(&paradigm, &workload, &params));
        prof::set_enabled(false);
    }
    // The profiled arm must actually have profiled something, or the
    // gate is vacuous.
    prof::set_enabled(true);
    timed_run(&paradigm, &workload, &params);
    prof::set_enabled(false);
    let calls: u64 = prof::snapshot().iter().map(|s| s.calls).sum();
    assert!(calls > 0, "profiler saw no kernel calls; gate is vacuous");

    let (m_off, m_on) = (median(off), median(on));
    let ratio = m_on / m_off;
    eprintln!(
        "profiler off: {:.3} ms, on: {:.3} ms, ratio {:.4} (gate {MAX_OVERHEAD})",
        m_off * 1e3,
        m_on * 1e3,
        ratio
    );
    assert!(
        ratio <= MAX_OVERHEAD,
        "profiler overhead {:.2}% exceeds the 2% budget",
        (ratio - 1.0) * 100.0
    );
}
