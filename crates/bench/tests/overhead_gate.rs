//! The observability overhead gates: enabling the kernel profiler
//! ([`pms_trace::prof`]) must cost at most 2 % even with the metrics
//! snapshot pipeline attached at its default cadence, and the snapshot
//! pipeline itself must stay within a small measured budget of a bare
//! ring sink.
//!
//! This is a wall-clock timing test, so it is `#[ignore]`d by default
//! and run explicitly — in release mode, on an otherwise idle machine —
//! by the CI bench-smoke job:
//!
//! ```text
//! cargo test --release -p pms-bench --test overhead_gate -- --ignored
//! ```
//!
//! Methodology: the profiled and unprofiled runs are interleaved (so
//! slow drift in machine load hits both arms equally) and compared by
//! median-of-N, which discards scheduler hiccups that a mean would
//! absorb. The workload is sized so one run takes a few milliseconds —
//! long enough that timer granularity is noise, short enough for CI.

use pms_sim::{Paradigm, PredictorKind, SimParams};
use pms_trace::{prof, SnapshotConfig, Tracer};
use pms_workloads::{ordered_mesh, MeshSpec};
use std::hint::black_box;
use std::time::Instant;

/// Allowed profiler overhead with snapshotting live in both arms: 2 %.
const MAX_OVERHEAD: f64 = 1.02;
/// Allowed snapshot-pipeline overhead over a bare ring sink: 8 %.
///
/// This bound is measured, not aspirational. The gate workload is
/// tracing-stressed on purpose — a bare ring emit is ~8 ns, so the
/// whole run is dominated by emit cost and every nanosecond the
/// pipeline layer adds per record shows up as roughly a percent here.
/// The boundary check + metric fold come to ~1 ns/record after the
/// cached-boundary and multiplicative-hash optimizations; 8 % leaves
/// 2x headroom over the ~4 % observed on an idle machine. Real
/// simulations spend far more time outside the tracer, so their
/// relative cost is much smaller than this gate's.
const MAX_PIPELINE_OVERHEAD: f64 = 1.08;
/// Timed run pairs; medians are taken over this many samples per arm.
const SAMPLES: usize = 15;

fn timed_traced_run(
    paradigm: &Paradigm,
    w: &pms_workloads::Workload,
    p: &SimParams,
    make: impl Fn() -> Tracer,
) -> f64 {
    let start = Instant::now();
    let (stats, tracer) = paradigm.run_traced(black_box(w), black_box(p), make());
    black_box((stats.delivered_bytes, tracer.records().len()));
    start.elapsed().as_secs_f64()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// The acceptance gate from the observability PR: the profiler's cost
/// is judged with the metrics snapshot pipeline running at its default
/// cadence in *both* arms, so "turning the profiler on" is measured
/// against the deployment the telemetry server actually runs.
#[test]
#[ignore = "wall-clock gate; run explicitly with --release (see CI bench-smoke)"]
fn profiler_overhead_with_default_snapshot_cadence_is_within_two_percent() {
    let mesh = MeshSpec::for_ports(64);
    let workload = ordered_mesh(mesh, 64, 4, 500, 100);
    let params = SimParams::default().with_ports(64);
    let paradigm = Paradigm::DynamicTdm(PredictorKind::Timeout(400));
    let piped = || Tracer::pipeline(SnapshotConfig::default(), None, Tracer::Null);

    // Warm caches and the allocator before timing anything.
    for _ in 0..3 {
        timed_traced_run(&paradigm, &workload, &params, piped);
    }

    let (mut off, mut on) = (Vec::new(), Vec::new());
    for _ in 0..SAMPLES {
        prof::set_enabled(false);
        off.push(timed_traced_run(&paradigm, &workload, &params, piped));
        prof::reset();
        prof::set_enabled(true);
        on.push(timed_traced_run(&paradigm, &workload, &params, piped));
        prof::set_enabled(false);
    }
    // The profiled arm must actually have profiled something — and the
    // snapshot pipeline must actually have rolled windows — or the gate
    // is vacuous.
    prof::set_enabled(true);
    let (_, tracer) = paradigm.run_traced(&workload, &params, piped());
    prof::set_enabled(false);
    let calls: u64 = prof::snapshot().iter().map(|s| s.calls).sum();
    assert!(calls > 0, "profiler saw no kernel calls; gate is vacuous");
    assert!(
        !tracer.snapshots().is_empty(),
        "snapshot pipeline emitted no windows; gate is vacuous"
    );

    let (m_off, m_on) = (median(off), median(on));
    let ratio = m_on / m_off;
    eprintln!(
        "profiler off: {:.3} ms, on: {:.3} ms, ratio {:.4} (gate {MAX_OVERHEAD})",
        m_off * 1e3,
        m_on * 1e3,
        ratio
    );
    assert!(
        ratio <= MAX_OVERHEAD,
        "profiler overhead {:.2}% exceeds the 2% budget",
        (ratio - 1.0) * 100.0
    );
}

/// The snapshot pipeline's own cost over a bare ring sink, bounded by
/// the measured [`MAX_PIPELINE_OVERHEAD`] budget (see its doc comment
/// for why this gate is deliberately looser than 2 %).
#[test]
#[ignore = "wall-clock gate; run explicitly with --release (see CI bench-smoke)"]
fn snapshot_pipeline_overhead_on_ring_sink_is_within_budget() {
    let mesh = MeshSpec::for_ports(64);
    let workload = ordered_mesh(mesh, 64, 4, 500, 100);
    let params = SimParams::default().with_ports(64);
    let paradigm = Paradigm::DynamicTdm(PredictorKind::Timeout(400));
    let plain = || Tracer::ring(4096);
    let piped = || Tracer::pipeline(SnapshotConfig::default(), None, Tracer::ring(4096));

    for _ in 0..3 {
        timed_traced_run(&paradigm, &workload, &params, plain);
    }

    let (mut off, mut on) = (Vec::new(), Vec::new());
    for _ in 0..SAMPLES {
        off.push(timed_traced_run(&paradigm, &workload, &params, plain));
        on.push(timed_traced_run(&paradigm, &workload, &params, piped));
    }

    // The pipelined arm must actually have collected snapshots, or the
    // gate is vacuous.
    let (_, tracer) = paradigm.run_traced(&workload, &params, piped());
    assert!(
        !tracer.snapshots().is_empty(),
        "snapshot pipeline emitted no windows; gate is vacuous"
    );

    let (m_off, m_on) = (median(off), median(on));
    let ratio = m_on / m_off;
    eprintln!(
        "pipeline off: {:.3} ms, on: {:.3} ms, ratio {:.4} (gate {MAX_PIPELINE_OVERHEAD})",
        m_off * 1e3,
        m_on * 1e3,
        ratio
    );
    assert!(
        ratio <= MAX_PIPELINE_OVERHEAD,
        "snapshot-pipeline overhead {:.2}% exceeds the {:.0}% budget",
        (ratio - 1.0) * 100.0,
        (MAX_PIPELINE_OVERHEAD - 1.0) * 100.0
    );
}
