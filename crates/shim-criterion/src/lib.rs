//! Minimal stand-in for the subset of `criterion` used by this
//! workspace's benches (offline build: no registry access, so the
//! workspace path-renames this crate in as `criterion`).
//!
//! It keeps the measurement loop honest — calibrated batch sizes, many
//! samples, median-of-samples reporting — but does none of criterion's
//! statistics, baselines, or HTML reports. Output is one line per
//! benchmark: median, min, and mean ns/iter plus optional throughput.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Work-per-iteration hint used to print throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (the group name provides the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs the measured closure in calibrated batches.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's batch of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One benchmark's collected timings.
#[derive(Debug, Clone)]
pub struct Sampled {
    /// Median ns per iteration across samples.
    pub median_ns: f64,
    /// Minimum ns per iteration across samples.
    pub min_ns: f64,
    /// Mean ns per iteration across samples.
    pub mean_ns: f64,
}

/// True when `PMS_BENCH_QUICK` is set (non-empty, not `0`): CI smoke mode.
/// Quick mode shrinks the calibration target and sample count so a full
/// bench sweep finishes in seconds — numbers are noisy but every bench
/// body still executes, which is all the smoke job asserts.
fn quick_mode() -> bool {
    std::env::var("PMS_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn run_samples<F: FnMut(&mut Bencher)>(mut f: F, samples: usize) -> Sampled {
    let quick = quick_mode();
    let (target, samples) = if quick {
        (Duration::from_micros(100), 2)
    } else {
        (Duration::from_millis(2), samples.max(5))
    };
    // Calibrate: double the batch until one batch takes >= the target.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= target || iters >= 1 << 24 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median_ns = per_iter[per_iter.len() / 2];
    let min_ns = per_iter[0];
    let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    Sampled {
        median_ns,
        min_ns,
        mean_ns,
    }
}

fn report(name: &str, s: &Sampled, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / s.median_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / s.median_ns * 1e9 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!(
        "{name:<48} median {:>12.1} ns/iter  min {:>12.1}  mean {:>12.1}{rate}",
        s.median_ns, s.min_ns, s.mean_ns
    );
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let s = run_samples(f, self.sample_size);
        report(name, &s, None);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the throughput hint for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let s = run_samples(|b| f(b, input), self.sample_size);
        let name = format!("{}/{}", self.name, id.id);
        report(&name, &s, self.throughput);
        self
    }

    /// Benchmarks a closure with no extra input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let s = run_samples(f, self.sample_size);
        let name = format!("{}/{}", self.name, id);
        report(&name, &s, self.throughput);
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(&mut self) {}
}

/// Declares a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(4));
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| {
                calls += 1;
                (0..n).sum::<u64>()
            });
        });
        group.finish();
        assert!(calls > 0, "closure never ran");
    }
}
