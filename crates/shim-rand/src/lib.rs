//! Minimal, deterministic stand-in for the subset of the `rand` 0.8 API
//! used by this workspace (`StdRng::seed_from_u64`, `gen_range` over
//! half-open integer ranges, `gen_bool`, and `SliceRandom::shuffle`).
//!
//! The build environment is fully offline (no registry, no vendored
//! sources), so the workspace path-renames this crate in as `rand`.
//! The generator is splitmix64 — statistically fine for workload
//! synthesis and property tests, and bit-for-bit reproducible across
//! platforms, which the simulators rely on for determinism tests.
//!
//! This is *not* a cryptographic RNG and does not promise stream
//! compatibility with upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core entropy source: 64 raw bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (the only constructor the workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types `gen_range` can sample.
pub trait SampleUniform: Copy {
    /// Widens to u64 for the unbiased range reduction.
    fn to_u64(self) -> u64;
    /// Narrows back after reduction.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling helpers, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a non-empty half-open range `low..high`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "gen_range called with an empty range");
        let span = hi - lo;
        // Multiply-shift range reduction; bias is < 2^-64 * span.
        let r = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        T::from_u64(lo + r)
    }

    /// Bernoulli sample: true with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        // Compare against the top 53 bits as a uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// In-place Fisher-Yates shuffling for slices.
pub trait SliceRandom {
    /// Uniformly permutes the slice in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: splitmix64.
    ///
    /// Unlike upstream `StdRng` this is not cryptographically secure; it
    /// exists to make seeded workload generation deterministic offline.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Discard one output so seed 0 does not start at state 0.
            let _ = rng.next_u64();
            rng
        }
    }
}

pub mod seq {
    //! Sequence helpers (`SliceRandom`).
    pub use super::SliceRandom;
}

pub mod prelude {
    //! One-stop import mirroring `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleUniform, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }
}
