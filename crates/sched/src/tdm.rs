//! The TDM slot counter (Figure 2).
//!
//! "The TDM counter ... counts from 0 to K-1, but ... skips a particular
//! count t, if the corresponding matrix B^(t) is all zeros. This feature
//! skips over empty configurations and allows the scheduler to reduce the
//! multiplexing degrees by controlling the content of the configuration
//! register."

use pms_bitmat::BitMatrix;

/// Cyclic slot counter over `K` configuration registers that skips
/// all-zero configurations.
#[derive(Debug, Clone)]
pub struct TdmCounter {
    k: usize,
    pos: usize,
}

impl TdmCounter {
    /// Creates a counter over `k` slots, positioned at slot 0.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "TDM counter needs at least one slot");
        Self { k, pos: 0 }
    }

    /// Number of slots `K`.
    pub fn slots(&self) -> usize {
        self.k
    }

    /// The slot the counter currently points at.
    pub fn current(&self) -> usize {
        self.pos
    }

    /// Advances to the next non-empty slot and returns it, or `None` when
    /// every configuration is empty (the counter then holds its position —
    /// no slot clock is consumed by an idle network).
    pub fn advance(&mut self, configs: &[BitMatrix]) -> Option<usize> {
        assert_eq!(configs.len(), self.k, "config register count mismatch");
        for step in 1..=self.k {
            let candidate = (self.pos + step) % self.k;
            if !configs[candidate].all_zero() {
                self.pos = candidate;
                return Some(candidate);
            }
        }
        None
    }

    /// The *effective multiplexing degree*: the number of non-empty slots
    /// the counter actually visits. Each established connection receives
    /// `1/degree` of the link bandwidth.
    pub fn effective_degree(configs: &[BitMatrix]) -> usize {
        configs.iter().filter(|c| !c.all_zero()).count()
    }

    /// Closed form of `count` consecutive [`advance`](Self::advance) calls
    /// against *unchanging* configurations: walks the cyclic non-empty-slot
    /// sequence in O(K) and returns the slot of the final advance (`None`,
    /// holding position, when every configuration is empty or `count` is
    /// zero — exactly like `advance`). Idle-skipping simulators use this to
    /// fast-forward slot boundaries.
    pub fn skip(&mut self, count: u64, configs: &[BitMatrix]) -> Option<usize> {
        assert_eq!(configs.len(), self.k, "config register count mismatch");
        if count == 0 {
            return None;
        }
        let nonempty: Vec<usize> = (0..self.k).filter(|&s| !configs[s].all_zero()).collect();
        if nonempty.is_empty() {
            return None;
        }
        let m = nonempty.len() as u64;
        // The first advance lands on the first non-empty slot strictly
        // after `pos` (cyclically); later advances follow the cyclic order.
        let i0 = nonempty.iter().position(|&s| s > self.pos).unwrap_or(0) as u64;
        let last = nonempty[((i0 + (count - 1) % m) % m) as usize];
        self.pos = last;
        Some(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configs(k: usize, nonempty: &[usize]) -> Vec<BitMatrix> {
        (0..k)
            .map(|i| {
                let mut m = BitMatrix::square(4);
                if nonempty.contains(&i) {
                    m.set(0, i % 4, true);
                }
                m
            })
            .collect()
    }

    #[test]
    fn cycles_over_nonempty_slots() {
        let cfgs = configs(4, &[0, 2]);
        let mut ctr = TdmCounter::new(4);
        assert_eq!(ctr.advance(&cfgs), Some(2));
        assert_eq!(ctr.advance(&cfgs), Some(0));
        assert_eq!(ctr.advance(&cfgs), Some(2));
        assert_eq!(ctr.advance(&cfgs), Some(0));
    }

    #[test]
    fn all_empty_returns_none_and_holds() {
        let cfgs = configs(3, &[]);
        let mut ctr = TdmCounter::new(3);
        assert_eq!(ctr.advance(&cfgs), None);
        assert_eq!(ctr.current(), 0, "counter holds when idle");
    }

    #[test]
    fn single_nonempty_slot_is_revisited_every_advance() {
        let cfgs = configs(4, &[3]);
        let mut ctr = TdmCounter::new(4);
        for _ in 0..5 {
            assert_eq!(ctr.advance(&cfgs), Some(3));
        }
    }

    #[test]
    fn full_degree_visits_all_slots_in_order() {
        let cfgs = configs(4, &[0, 1, 2, 3]);
        let mut ctr = TdmCounter::new(4);
        let visits: Vec<usize> = (0..8).map(|_| ctr.advance(&cfgs).unwrap()).collect();
        assert_eq!(visits, vec![1, 2, 3, 0, 1, 2, 3, 0]);
    }

    #[test]
    fn effective_degree_counts_nonempty() {
        assert_eq!(TdmCounter::effective_degree(&configs(4, &[1, 3])), 2);
        assert_eq!(TdmCounter::effective_degree(&configs(4, &[])), 0);
        assert_eq!(TdmCounter::effective_degree(&configs(4, &[0, 1, 2, 3])), 4);
    }

    #[test]
    fn degree_shrinks_when_slot_empties() {
        // The paper's point: emptying a register immediately reduces the
        // multiplexing degree, giving remaining connections more bandwidth.
        let mut cfgs = configs(4, &[0, 1]);
        let mut ctr = TdmCounter::new(4);
        assert_eq!(ctr.advance(&cfgs), Some(1));
        cfgs[1].clear();
        assert_eq!(ctr.advance(&cfgs), Some(0));
        assert_eq!(ctr.advance(&cfgs), Some(0));
        assert_eq!(TdmCounter::effective_degree(&cfgs), 1);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        TdmCounter::new(0);
    }

    #[test]
    fn skip_matches_repeated_advance() {
        for nonempty in [vec![], vec![0], vec![3], vec![0, 2], vec![1, 2, 3]] {
            let cfgs = configs(4, &nonempty);
            for count in 0..10u64 {
                let mut by_advance = TdmCounter::new(4);
                let mut last = None;
                for _ in 0..count {
                    last = by_advance.advance(&cfgs);
                }
                let mut by_skip = TdmCounter::new(4);
                assert_eq!(by_skip.skip(count, &cfgs), last, "{nonempty:?}/{count}");
                assert_eq!(by_skip.current(), by_advance.current());
            }
        }
    }
}
