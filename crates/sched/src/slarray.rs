//! The `N x N` scheduling-logic array (Figure 3) evaluated as one
//! combinational pass.
//!
//! Availability signals ripple through the array: `A` per column (output
//! port occupancy, initialized from `AO = OR of columns of B^(s)`) and `D`
//! per row (input port occupancy, initialized from `AI = OR of rows of
//! B^(s)`). Because a cell that *releases* a connection clears the ripples,
//! ports freed by a release become available to establish requests later in
//! the same pass — the hardware performs release-then-establish in a single
//! SL clock.
//!
//! The paper's fairness refinement is supported: "a more fair schedule can
//! be obtained by rotating the priority such that `A_{a,v} = AO_v` and
//! `D_{u,b} = AI_u` where `a` and `b` are selected randomly or through a
//! round robin scheme". [`Priority`] carries that `(a, b)` rotation; cells
//! are evaluated in row order `a, a+1, ... (mod N)` and column order
//! `b, b+1, ... (mod N)`, which is exactly the acyclic ripple the rotated
//! initialization induces.

use crate::slcell::{sl_cell, CellAction, CellInput};
use pms_bitmat::BitMatrix;
use pms_trace::prof::{ProfKernel, ProfScope};

/// The priority rotation `(a, b)`: the row/column where the availability
/// ripples are injected, i.e. the highest-priority requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Priority {
    /// First row in the ripple order.
    pub row: usize,
    /// First column in the ripple order.
    pub col: usize,
}

/// Result of one SL array pass.
#[derive(Debug, Clone)]
pub struct SlPassOutput {
    /// The toggle matrix `T`: apply `B^(s) ^= T` to commit the pass.
    pub toggles: BitMatrix,
    /// Connections established this pass.
    pub established: Vec<(usize, usize)>,
    /// Connections released this pass.
    pub released: Vec<(usize, usize)>,
    /// Requests denied this pass (port unavailable).
    pub denied: Vec<(usize, usize)>,
    /// Number of `L = 1` cells the availability ripple actually visited —
    /// the dynamic ripple depth of this pass (the worst case is `2N`
    /// cells; see [`SlTimingModel`](crate::SlTimingModel)).
    pub cells_visited: usize,
}

impl SlPassOutput {
    /// True if the pass changed nothing and denied nothing.
    pub fn is_quiescent(&self) -> bool {
        self.established.is_empty() && self.released.is_empty() && self.denied.is_empty()
    }
}

/// Storage word width of [`BitMatrix`]/`BitVec` rows (the packed-bit layout
/// contract `scan_rotated` relies on).
const WORD_BITS: usize = 64;

/// Calls `f` with every set-bit index of `words` in `[lo, hi)`, ascending.
/// Bits outside the range (including row-padding bits past `hi`) are masked
/// off word-by-word, so the scan touches only whole `u64` words.
fn scan_range<F: FnMut(usize)>(words: &[u64], lo: usize, hi: usize, f: &mut F) {
    if lo >= hi {
        return;
    }
    let (w_lo, w_hi) = (lo / WORD_BITS, (hi - 1) / WORD_BITS);
    for (wi, &word) in words.iter().enumerate().take(w_hi + 1).skip(w_lo) {
        let mut w = word;
        if wi == w_lo {
            w &= u64::MAX << (lo % WORD_BITS);
        }
        if wi == w_hi {
            let top = hi - wi * WORD_BITS;
            if top < WORD_BITS {
                w &= (1u64 << top) - 1;
            }
        }
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            w &= w - 1;
            f(wi * WORD_BITS + bit);
        }
    }
}

/// Calls `f` with every set-bit index of `words` (an `n`-bit row) in the
/// rotated order `start, start+1, ..., n-1, 0, ..., start-1` — the priority
/// ripple order — by scanning the two wrap segments word-parallel.
fn scan_rotated<F: FnMut(usize)>(words: &[u64], n: usize, start: usize, f: &mut F) {
    scan_range(words, start, n, f);
    scan_range(words, 0, start, f);
}

/// Runs one combinational pass of the SL array for slot matrix `b_s` with
/// change requests `l` (from [`presched_matrix`](crate::presched_matrix)).
///
/// Returns the toggle matrix and the decoded per-connection actions. The
/// caller commits the pass by XORing `toggles` into `B^(s)`.
///
/// Only `L = 1` cells are visited: empty request rows are skipped via a
/// word-parallel row-occupancy scan and set columns are found with
/// `trailing_zeros` word iteration, so a sparse pass costs
/// `O(N²/64 + cells_visited)` instead of `O(N²)`. The visit order — rows
/// rotated from `priority.row`, columns rotated from `priority.col` — and
/// every output field, including `cells_visited`, are identical to
/// [`reference::sl_pass`] (proptest-enforced in `tests/prop.rs`).
///
/// # Panics
/// Panics if `l` and `b_s` are not square matrices of equal size, or if the
/// priority indices are out of range.
pub fn sl_pass(l: &BitMatrix, b_s: &BitMatrix, priority: Priority) -> SlPassOutput {
    let n = b_s.rows();
    assert_eq!(b_s.cols(), n, "B^(s) must be square");
    assert_eq!((l.rows(), l.cols()), (n, n), "L must match B^(s)");
    assert!(
        priority.row < n && priority.col < n,
        "priority ({}, {}) out of range for {n} ports",
        priority.row,
        priority.col
    );

    let mut prof = ProfScope::enter(ProfKernel::SlPass);

    // Ripple state: A per column, D per row, injected at (a, b).
    let mut col_busy = b_s.col_or(); // AO
    let row_busy_init = b_s.row_or(); // AI

    let mut toggles = BitMatrix::new(n, n);
    let mut established = Vec::new();
    let mut released = Vec::new();
    let mut denied = Vec::new();
    let mut cells_visited = 0usize;
    let mut rows_visited = 0usize;

    // Rows with at least one change request, visited in rotated order.
    let active_rows = l.row_or();

    let mut visit_row = |u: usize| {
        rows_visited += 1;
        let mut d = row_busy_init.get(u);
        let mut visit_cell = |v: usize| {
            cells_visited += 1;
            let out = sl_cell(CellInput {
                l: true,
                a: col_busy.get(v),
                d,
                b_s: b_s.get(u, v),
            });
            col_busy.set(v, out.a_next);
            d = out.d_next;
            if out.t {
                toggles.set(u, v, true);
            }
            match out.action {
                CellAction::Establish => established.push((u, v)),
                CellAction::Release => released.push((u, v)),
                CellAction::Denied => denied.push((u, v)),
                CellAction::NoChange => unreachable!("only L=1 cells are visited"),
            }
        };
        scan_rotated(l.row_words(u), n, priority.col, &mut visit_cell);
    };
    scan_rotated(active_rows.words(), n, priority.row, &mut visit_row);

    // Words the scans actually touched: the row-occupancy words plus one
    // row of request words per visited row.
    prof.add_words((n.div_ceil(WORD_BITS) * (1 + rows_visited)) as u64);

    SlPassOutput {
        toggles,
        established,
        released,
        denied,
        cells_visited,
    }
}

/// The original cell-by-cell SL pass, kept verbatim as the semantic
/// reference for the word-parallel [`sl_pass`](super::sl_pass) — proptests
/// assert the two produce identical outputs, and the perf harness measures
/// the speedup between them.
pub mod reference {
    use super::{sl_cell, CellAction, CellInput, Priority, SlPassOutput};
    use pms_bitmat::BitMatrix;

    /// One SL array pass, visiting each request row with a gather-and-sort
    /// over its columns (the pre-optimization implementation).
    ///
    /// # Panics
    /// Panics if `l` and `b_s` are not square matrices of equal size, or if
    /// the priority indices are out of range.
    pub fn sl_pass(l: &BitMatrix, b_s: &BitMatrix, priority: Priority) -> SlPassOutput {
        let n = b_s.rows();
        assert_eq!(b_s.cols(), n, "B^(s) must be square");
        assert_eq!((l.rows(), l.cols()), (n, n), "L must match B^(s)");
        assert!(
            priority.row < n && priority.col < n,
            "priority ({}, {}) out of range for {n} ports",
            priority.row,
            priority.col
        );

        // Ripple state: A per column, D per row, injected at (a, b).
        let mut col_busy = b_s.col_or(); // AO
        let row_busy_init = b_s.row_or(); // AI

        let mut toggles = BitMatrix::new(n, n);
        let mut established = Vec::new();
        let mut released = Vec::new();
        let mut denied = Vec::new();
        let mut cells_visited = 0usize;

        for du in 0..n {
            let u = (priority.row + du) % n;
            // Gather this row's L=1 columns and visit them in rotated order.
            let mut cols: Vec<usize> = l.iter_row_ones(u).collect();
            if cols.is_empty() {
                continue;
            }
            cols.sort_unstable_by_key(|&v| (n + v - priority.col) % n);

            let mut d = row_busy_init.get(u);
            for v in cols {
                cells_visited += 1;
                let out = sl_cell(CellInput {
                    l: true,
                    a: col_busy.get(v),
                    d,
                    b_s: b_s.get(u, v),
                });
                col_busy.set(v, out.a_next);
                d = out.d_next;
                if out.t {
                    toggles.set(u, v, true);
                }
                match out.action {
                    CellAction::Establish => established.push((u, v)),
                    CellAction::Release => released.push((u, v)),
                    CellAction::Denied => denied.push((u, v)),
                    CellAction::NoChange => unreachable!("only L=1 cells are visited"),
                }
            }
        }

        SlPassOutput {
            toggles,
            established,
            released,
            denied,
            cells_visited,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presched::presched_matrix;

    fn commit(b_s: &mut BitMatrix, out: &SlPassOutput) {
        for (u, v) in out.toggles.iter_ones().collect::<Vec<_>>() {
            b_s.toggle(u, v);
        }
    }

    /// Helper: run pre-scheduling + one SL pass with B* == B^(s).
    fn pass(requests: &[(usize, usize)], b_s: &mut BitMatrix, priority: Priority) -> SlPassOutput {
        let n = b_s.rows();
        let r = BitMatrix::from_pairs(n, n, requests.iter().copied());
        let l = presched_matrix(&r, &b_s.clone(), b_s);
        let out = sl_pass(&l, b_s, priority);
        commit(b_s, &out);
        out
    }

    #[test]
    fn establishes_nonconflicting_requests() {
        let mut b = BitMatrix::square(8);
        let out = pass(&[(0, 1), (1, 2), (7, 0)], &mut b, Priority::default());
        assert_eq!(out.established.len(), 3);
        assert!(out.released.is_empty() && out.denied.is_empty());
        assert!(b.get(0, 1) && b.get(1, 2) && b.get(7, 0));
        assert!(b.is_partial_permutation());
    }

    #[test]
    fn output_conflict_denies_lower_priority() {
        let mut b = BitMatrix::square(8);
        // Inputs 0 and 3 both want output 5; row 0 has priority.
        let out = pass(&[(0, 5), (3, 5)], &mut b, Priority::default());
        assert_eq!(out.established, vec![(0, 5)]);
        assert_eq!(out.denied, vec![(3, 5)]);
        assert!(b.is_partial_permutation());
    }

    #[test]
    fn input_conflict_denies_lower_priority_column() {
        let mut b = BitMatrix::square(8);
        // Input 2 wants outputs 1 and 6; column 1 wins at default priority.
        let out = pass(&[(2, 1), (2, 6)], &mut b, Priority::default());
        assert_eq!(out.established, vec![(2, 1)]);
        assert_eq!(out.denied, vec![(2, 6)]);
    }

    #[test]
    fn rotation_changes_the_winner() {
        let mut b = BitMatrix::square(8);
        // With priority rotated to row 3, input 3 beats input 0.
        let out = pass(&[(0, 5), (3, 5)], &mut b, Priority { row: 3, col: 0 });
        assert_eq!(out.established, vec![(3, 5)]);
        assert_eq!(out.denied, vec![(0, 5)]);
    }

    #[test]
    fn column_rotation_changes_the_winner() {
        let mut b = BitMatrix::square(8);
        let out = pass(&[(2, 1), (2, 6)], &mut b, Priority { row: 0, col: 6 });
        assert_eq!(out.established, vec![(2, 6)]);
        assert_eq!(out.denied, vec![(2, 1)]);
    }

    #[test]
    fn release_frees_ports_for_later_establish_same_pass() {
        // (0,5) is established but no longer requested; (3,5) is newly
        // requested. Row 0 is scanned first, releasing output 5, so row 3
        // can claim it in the same pass.
        let mut b = BitMatrix::from_pairs(8, 8, [(0, 5)]);
        let out = pass(&[(3, 5)], &mut b, Priority::default());
        assert_eq!(out.released, vec![(0, 5)]);
        assert_eq!(out.established, vec![(3, 5)]);
        assert!(!b.get(0, 5) && b.get(3, 5));
    }

    #[test]
    fn establish_blocked_when_release_scans_later() {
        // Same as above but priority starts at row 3: the establish at
        // (3,5) is evaluated before the release at (0,5), so it is denied
        // this pass; the release still happens.
        let mut b = BitMatrix::from_pairs(8, 8, [(0, 5)]);
        let out = pass(&[(3, 5)], &mut b, Priority { row: 3, col: 0 });
        assert_eq!(out.denied, vec![(3, 5)]);
        assert_eq!(out.released, vec![(0, 5)]);
        // A second pass succeeds.
        let out2 = pass(&[(3, 5)], &mut b, Priority { row: 3, col: 0 });
        assert_eq!(out2.established, vec![(3, 5)]);
    }

    #[test]
    fn erratum_establish_with_busy_ports_denied_not_toggled() {
        // (0,5) and (3,1) persist (still requested); (3,5) is new but both
        // its input (row 3) and output (column 5) are busy.
        let mut b = BitMatrix::from_pairs(8, 8, [(0, 5), (3, 1)]);
        let out = pass(&[(0, 5), (3, 1), (3, 5)], &mut b, Priority::default());
        assert_eq!(out.denied, vec![(3, 5)]);
        assert!(out.established.is_empty() && out.released.is_empty());
        assert!(!b.get(3, 5), "erratum: spurious toggle would corrupt B");
        assert!(b.is_partial_permutation());
    }

    #[test]
    fn full_permutation_request_fills_in_one_pass() {
        let n = 64;
        let mut b = BitMatrix::square(n);
        let reqs: Vec<(usize, usize)> = (0..n).map(|u| (u, (u + 7) % n)).collect();
        let out = pass(&reqs, &mut b, Priority { row: 13, col: 40 });
        assert_eq!(out.established.len(), n);
        assert!(b.is_permutation());
    }

    #[test]
    fn quiescent_pass_reports_nothing() {
        let mut b = BitMatrix::from_pairs(8, 8, [(1, 1)]);
        let out = pass(&[(1, 1)], &mut b, Priority::default());
        assert!(out.is_quiescent());
        assert!(b.get(1, 1));
    }

    #[test]
    fn ripple_depth_counts_visited_cells() {
        let mut b = BitMatrix::square(8);
        // Quiescent request set: pre-scheduling filters everything out.
        let out = pass(&[], &mut b, Priority::default());
        assert_eq!(out.cells_visited, 0);
        // Three change requests -> three L=1 cells on the ripple path.
        let out = pass(&[(0, 1), (1, 2), (7, 0)], &mut b, Priority::default());
        assert_eq!(out.cells_visited, 3);
        // Persisting connections are not revisited; a fourth request adds
        // exactly one cell.
        let out = pass(
            &[(0, 1), (1, 2), (7, 0), (2, 4)],
            &mut b,
            Priority::default(),
        );
        assert_eq!(out.cells_visited, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_priority_panics() {
        let b = BitMatrix::square(4);
        sl_pass(&BitMatrix::square(4), &b, Priority { row: 4, col: 0 });
    }

    /// The fast pass and the reference pass agree field-for-field on a
    /// wrap-heavy case (priority mid-word, cells on both wrap segments,
    /// non-multiple-of-64 size). The exhaustive check is the proptest in
    /// `tests/prop.rs`.
    #[test]
    fn fast_matches_reference_on_wrapped_priority() {
        let n = 70;
        let b = BitMatrix::from_pairs(n, n, [(0, 5), (65, 65), (30, 40)]);
        let l = BitMatrix::from_pairs(
            n,
            n,
            [
                (0, 5),
                (65, 65),
                (3, 40),
                (3, 41),
                (69, 0),
                (69, 69),
                (40, 40),
            ],
        );
        for priority in [
            Priority::default(),
            Priority { row: 66, col: 41 },
            Priority { row: 3, col: 69 },
        ] {
            let fast = sl_pass(&l, &b, priority);
            let refr = reference::sl_pass(&l, &b, priority);
            assert_eq!(fast.toggles, refr.toggles);
            assert_eq!(fast.established, refr.established);
            assert_eq!(fast.released, refr.released);
            assert_eq!(fast.denied, refr.denied);
            assert_eq!(fast.cells_visited, refr.cells_visited);
        }
    }
}
