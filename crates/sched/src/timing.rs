//! Structural timing model of the scheduling circuit (Table 3).
//!
//! The paper synthesized the scheduler on an Altera Stratix FPGA
//! (EP1S25F1020C-5) and reports the latencies of Table 3:
//!
//! | N | 4 | 8 | 16 | 32 | 64 | 128 |
//! |---|---|---|----|----|----|-----|
//! | FPGA latency (ns) | 34 | 49 | 76 | 120 | 213 | 385 |
//!
//! We model the latency *structurally* from the circuit the paper
//! describes: the availability ripple traverses `2N` SL cells (N rows of
//! `A` plus N columns of `D` on the worst-case path — "the scheduling delay
//! should be linearly proportional to the system size, N"), preceded by the
//! pre-scheduling logic whose `AO`/`AI` reductions are `⌈log2 N⌉`-deep OR
//! trees, plus a fixed term for the slot-select multiplexer, register
//! setup, and FPGA routing.
//!
//! `latency(N) = fixed + 2N * cell + ⌈log2 N⌉ * or_stage`
//!
//! Calibrating the three per-element delays once (least squares) against
//! the paper's six published points gives `fixed = 13.98 ns`,
//! `cell = 1.32 ns`, `or_stage = 4.68 ns`, with a worst-case error of
//! 2.1 ns (≈ 1.7 %) across the table. "ASIC results tend to be 5 to 10 times better than the FPGA
//! results"; the paper's simulations use 80 ns for the 128-port scheduler
//! (≈ 4.8x better), which [`ASIC_DERATE`] reproduces exactly.

/// Structural delay model of one SL-array scheduling pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlTimingModel {
    /// Fixed overhead: slot-select mux, register setup, routing (ns).
    pub fixed_ns: f64,
    /// Ripple delay through one SL cell (ns). The critical path crosses
    /// `2N` cells.
    pub cell_ns: f64,
    /// Delay of one level of the `AO`/`AI` OR-reduction trees (ns).
    pub or_stage_ns: f64,
}

/// Calibrated against the paper's Altera Stratix EP1S25F1020C-5 synthesis
/// (Table 3).
pub const FPGA_STRATIX: SlTimingModel = SlTimingModel {
    fixed_ns: 13.9794,
    cell_ns: 1.3228,
    or_stage_ns: 4.6818,
};

/// FPGA-to-ASIC improvement factor that reproduces the paper's
/// "conservative" choice of 80 ns for the 128x128 ASIC scheduler
/// (385 / 80 ≈ 4.8, "about 5x better").
pub const ASIC_DERATE: f64 = 385.0 / 80.0;

impl SlTimingModel {
    /// Critical-path latency of one scheduling pass for an `N`-port array,
    /// in nanoseconds.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn latency_ns(&self, n: usize) -> f64 {
        assert!(n > 0, "scheduler needs at least one port");
        let log2n = (usize::BITS - (n - 1).leading_zeros()).max(1) as f64;
        self.fixed_ns + 2.0 * n as f64 * self.cell_ns + log2n * self.or_stage_ns
    }

    /// Latency rounded to whole nanoseconds, as Table 3 reports.
    pub fn latency_ns_rounded(&self, n: usize) -> u64 {
        self.latency_ns(n).round() as u64
    }

    /// Data-dependent pass latency: like [`latency_ns`](Self::latency_ns)
    /// but with the ripple term scaled by the number of `L = 1` cells the
    /// pass actually visited (`PassReport::ripple_depth`) instead of the
    /// `2N` worst case. `depth` is clamped to `2N`, so this never exceeds
    /// the critical-path figure; a quiescent pass (`depth == 0`) still
    /// pays the fixed and OR-tree terms.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn latency_for_depth_ns(&self, n: usize, depth: usize) -> f64 {
        assert!(n > 0, "scheduler needs at least one port");
        let log2n = (usize::BITS - (n - 1).leading_zeros()).max(1) as f64;
        let depth = depth.min(2 * n) as f64;
        self.fixed_ns + depth * self.cell_ns + log2n * self.or_stage_ns
    }

    /// The same structure scaled by an FPGA-to-ASIC factor.
    pub fn derated(&self, factor: f64) -> SlTimingModel {
        assert!(factor > 0.0, "derate factor must be positive");
        SlTimingModel {
            fixed_ns: self.fixed_ns / factor,
            cell_ns: self.cell_ns / factor,
            or_stage_ns: self.or_stage_ns / factor,
        }
    }

    /// The ASIC scheduler latency the paper's simulations assume
    /// (80 ns at `n = 128`).
    pub fn asic_latency_ns(n: usize) -> u64 {
        FPGA_STRATIX.derated(ASIC_DERATE).latency_ns(n).round() as u64
    }
}

/// The paper's Table 3, for tests and the regeneration harness.
pub const TABLE3_PUBLISHED: [(usize, u64); 6] =
    [(4, 34), (8, 49), (16, 76), (32, 120), (64, 213), (128, 385)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_table3_within_4_percent() {
        for (n, published) in TABLE3_PUBLISHED {
            let got = FPGA_STRATIX.latency_ns(n);
            let err = (got - published as f64).abs();
            assert!(
                err <= 2.2,
                "N={n}: model {got:.1} ns vs published {published} ns (err {err:.1})"
            );
            assert!(
                err / published as f64 <= 0.02,
                "N={n}: relative error too large"
            );
        }
    }

    #[test]
    fn endpoints_match_exactly_when_rounded() {
        // The calibration anchors the smallest and largest systems.
        assert_eq!(FPGA_STRATIX.latency_ns_rounded(4), 34);
        assert_eq!(FPGA_STRATIX.latency_ns_rounded(128), 385);
    }

    #[test]
    fn asic_matches_papers_80ns_assumption() {
        assert_eq!(SlTimingModel::asic_latency_ns(128), 80);
    }

    #[test]
    fn latency_is_monotone_in_n() {
        let mut prev = 0.0;
        for n in [1, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
            let l = FPGA_STRATIX.latency_ns(n);
            assert!(l > prev, "latency must grow with N");
            prev = l;
        }
    }

    #[test]
    fn latency_is_asymptotically_linear() {
        // Doubling N should roughly double the dominant 2N*cell term.
        let l256 = FPGA_STRATIX.latency_ns(256);
        let l512 = FPGA_STRATIX.latency_ns(512);
        let ratio = l512 / l256;
        assert!((1.8..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn derate_scales_all_terms() {
        let asic = FPGA_STRATIX.derated(5.0);
        let n = 64;
        let ratio = FPGA_STRATIX.latency_ns(n) / asic.latency_ns(n);
        assert!((ratio - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        FPGA_STRATIX.latency_ns(0);
    }

    #[test]
    fn depth_latency_bounded_by_critical_path() {
        let n = 128;
        let full = FPGA_STRATIX.latency_ns(n);
        // depth == 2N reproduces the worst case exactly; larger depths clamp.
        assert!((FPGA_STRATIX.latency_for_depth_ns(n, 2 * n) - full).abs() < 1e-9);
        assert!((FPGA_STRATIX.latency_for_depth_ns(n, 10 * n) - full).abs() < 1e-9);
        // A quiescent pass still pays fixed + OR-tree.
        let quiescent = FPGA_STRATIX.latency_for_depth_ns(n, 0);
        assert!(quiescent < full);
        assert!(quiescent > FPGA_STRATIX.fixed_ns);
        // Monotone in depth.
        let mut prev = 0.0;
        for d in [0, 1, 16, 64, 256] {
            let l = FPGA_STRATIX.latency_for_depth_ns(n, d);
            assert!(l > prev);
            prev = l;
        }
    }
}
