//! The PMS hardware scheduler model (§4 of the paper, Figures 2-3,
//! Tables 1-3).
//!
//! The scheduler owns `K` configuration registers `B^(0)..B^(K-1)`, each a
//! partial-permutation matrix describing the crossbar setting of one TDM
//! time slot. Every SL clock it picks a slot `s`, derives the change-request
//! matrix `L` from the NIC request matrix `R`, the union matrix
//! `B* = ∨ B^(i)` and the slot matrix `B^(s)` (the *pre-scheduling logic*,
//! Table 1), then ripples availability signals through an `N x N` array of
//! identical scheduling-logic cells (Table 2, Figure 3) that release
//! no-longer-requested connections and establish newly requested ones in a
//! single combinational pass.
//!
//! Module map:
//!
//! * [`presched`] — Table 1: `(R, B*, B^(s)) -> L`;
//! * [`slcell`] — Table 2: one `SL_{u,v}` cell;
//! * [`slarray`] — the rippled cell array with rotating priority;
//! * [`tdm`] — the TDM slot counter that skips empty configurations;
//! * [`scheduler`] — the assembled scheduler with the paper's extensions
//!   (request latches, flush, preloaded configurations, multi-slot
//!   bandwidth);
//! * [`timing`] — the structural critical-path model reproducing Table 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod presched;
pub mod scheduler;
pub mod slarray;
pub mod slcell;
pub mod tdm;
pub mod timing;

pub use presched::{presched_case, presched_matrix, presched_matrix_pooled, PreschedCase};
pub use scheduler::{
    BandwidthMode, HoldPolicy, PassReport, Scheduler, SchedulerConfig, SlotRouter,
};
pub use slarray::{sl_pass, Priority, SlPassOutput};
pub use slcell::{sl_cell, CellAction, CellInput, CellOutput};
pub use tdm::TdmCounter;
pub use timing::{SlTimingModel, ASIC_DERATE, FPGA_STRATIX};
