//! The pre-scheduling logic of Table 1.
//!
//! For every port pair `(u, v)` the pre-scheduling logic compares the
//! request bit `R[u][v]`, the union bit `B*[u][v]` (connection established
//! in *some* slot) and the slot bit `B^(s)[u][v]` (connection established in
//! the slot currently being scheduled), and emits `L[u][v] = 1` iff the SL
//! array should change the state of that pair in slot `s`:
//!
//! | `R` | `B*` | `B^(s)` | case | `L` |
//! |-----|------|---------|------|-----|
//! | 0 | x | 0 | not requested, not in slot s          | 0 |
//! | 0 | x | 1 | not requested, realized in s: release | 1 |
//! | 1 | 1 | x | requested, realized somewhere: keep   | 0 |
//! | 1 | 0 | 0 | requested, nowhere realized: establish| 1 |
//!
//! i.e. `L = (!R & B^(s)) | (R & !B*)`.

use pms_bitmat::BitMatrix;
use pms_par::ShardPool;

/// The four rows of Table 1, for introspection and testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreschedCase {
    /// Row 1: connection not requested and not realized in slot `s`.
    Idle,
    /// Row 2: connection not requested but realized in slot `s` — release it.
    ShouldRelease,
    /// Row 3: connection requested and already realized in some slot.
    AlreadyEstablished,
    /// Row 4: connection requested and realized in no slot — establish it.
    ShouldEstablish,
}

impl PreschedCase {
    /// The `L` output of Table 1 for this case.
    pub fn l(self) -> bool {
        matches!(
            self,
            PreschedCase::ShouldRelease | PreschedCase::ShouldEstablish
        )
    }
}

/// Classifies one `(R, B*, B^(s))` bit triple per Table 1.
///
/// # Panics
/// Panics on the physically impossible input `B^(s) = 1, B* = 0` (a slot
/// bit that is missing from the union of all slots).
pub fn presched_case(r: bool, b_star: bool, b_s: bool) -> PreschedCase {
    assert!(
        b_star || !b_s,
        "B*[u][v]=0 with B^(s)[u][v]=1 violates the B* = OR(B^(i)) invariant"
    );
    match (r, b_s) {
        (false, false) => PreschedCase::Idle,
        (false, true) => PreschedCase::ShouldRelease,
        (true, _) if b_star => PreschedCase::AlreadyEstablished,
        (true, _) => PreschedCase::ShouldEstablish,
    }
}

/// Computes the full `L` matrix word-parallel: `L = (!R & B^(s)) | (R & !B*)`.
///
/// # Panics
/// Panics if the matrix dimensions differ.
pub fn presched_matrix(r: &BitMatrix, b_star: &BitMatrix, b_s: &BitMatrix) -> BitMatrix {
    BitMatrix::zip3_with(r, b_star, b_s, |rw, bstw, bsw| (!rw & bsw) | (rw & !bstw))
}

/// Below this row count a scatter costs more than the word sweep itself;
/// the threshold moves work between lanes, never changes the result.
const PAR_MIN_ROWS: usize = 512;

/// [`presched_matrix`] sharded over a pool: row ranges of `L` are computed
/// shard-locally (each shard reads the same word range of `R`, `B*`,
/// `B^(s)` and writes its disjoint rows of `L`), and the boundary merge is
/// the row-range concatenation — bit-identical to the sequential sweep at
/// any thread count. `None` (or a single-lane pool, or a small matrix)
/// takes the sequential path.
pub fn presched_matrix_pooled(
    r: &BitMatrix,
    b_star: &BitMatrix,
    b_s: &BitMatrix,
    pool: Option<&ShardPool>,
) -> BitMatrix {
    let pooled = pool.is_some_and(|p| p.threads() > 1) && r.rows() >= PAR_MIN_ROWS;
    if !pooled {
        return presched_matrix(r, b_star, b_s);
    }
    assert_eq!((r.rows(), r.cols()), (b_star.rows(), b_star.cols()));
    assert_eq!((r.rows(), r.cols()), (b_s.rows(), b_s.cols()));
    let pool = pool.expect("checked above");
    let mut out = BitMatrix::new(r.rows(), r.cols());
    let wpr = out.words_per_row();
    let rows_per_chunk = r.rows().div_ceil(pool.threads() * 2).max(1);
    let (rw, bstw, bsw) = (r.words(), b_star.words(), b_s.words());
    let mut chunks: Vec<(usize, &mut [u64])> =
        out.row_chunks_mut(rows_per_chunk).enumerate().collect();
    pool.scatter_mut(&mut chunks, |_, (ci, words)| {
        let base = *ci * rows_per_chunk * wpr;
        for (i, w) in words.iter_mut().enumerate() {
            let (rv, bst, bs) = (rw[base + i], bstw[base + i], bsw[base + i]);
            *w = (!rv & bs) | (rv & !bst);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_presched_matches_sequential() {
        let n = PAR_MIN_ROWS + 37;
        let mut r = BitMatrix::square(n);
        let mut b_star = BitMatrix::square(n);
        let mut b_s = BitMatrix::square(n);
        for u in 0..n {
            r.set(u, (u * 7 + 1) % n, true);
            if u % 3 == 0 {
                let v = (u * 5 + 2) % n;
                b_s.set(u, v, true);
                b_star.set(u, v, true);
            }
            if u % 4 == 1 {
                b_star.set(u, (u * 7 + 1) % n, true);
            }
        }
        let seq = presched_matrix(&r, &b_star, &b_s);
        let pool = ShardPool::new(4);
        assert_eq!(seq, presched_matrix_pooled(&r, &b_star, &b_s, Some(&pool)));
        assert_eq!(seq, presched_matrix_pooled(&r, &b_star, &b_s, None));
    }

    /// Exhaustive check of Table 1 over all legal bit triples.
    #[test]
    fn table1_exhaustive() {
        // (R, B*, B^(s)) -> expected L; B*=0 & Bs=1 is illegal.
        let rows = [
            (false, false, false, false), // idle
            (false, true, false, false),  // idle (established elsewhere, not requested, not in s)
            (false, true, true, true),    // release
            (true, true, false, false),   // already established (in another slot)
            (true, true, true, false),    // already established (in this slot)
            (true, false, false, true),   // establish
        ];
        for (r, bstar, bs, expect_l) in rows {
            let case = presched_case(r, bstar, bs);
            assert_eq!(case.l(), expect_l, "R={r} B*={bstar} Bs={bs} -> {case:?}");
        }
    }

    #[test]
    fn table1_case_identities() {
        assert_eq!(presched_case(false, false, false), PreschedCase::Idle);
        assert_eq!(
            presched_case(false, true, true),
            PreschedCase::ShouldRelease
        );
        assert_eq!(
            presched_case(true, true, false),
            PreschedCase::AlreadyEstablished
        );
        assert_eq!(
            presched_case(true, false, false),
            PreschedCase::ShouldEstablish
        );
    }

    #[test]
    #[should_panic(expected = "violates the B*")]
    fn impossible_input_panics() {
        presched_case(false, false, true);
    }

    #[test]
    fn matrix_matches_scalar() {
        let n = 67; // crosses a word boundary
        let r = BitMatrix::from_pairs(n, n, [(0, 1), (1, 2), (3, 3), (66, 0)]);
        let b_star = BitMatrix::from_pairs(n, n, [(1, 2), (5, 5), (3, 3)]);
        let b_s = BitMatrix::from_pairs(n, n, [(5, 5), (3, 3)]);
        let l = presched_matrix(&r, &b_star, &b_s);
        for u in 0..n {
            for v in 0..n {
                let expect = presched_case(r.get(u, v), b_star.get(u, v), b_s.get(u, v)).l();
                assert_eq!(l.get(u, v), expect, "mismatch at ({u},{v})");
            }
        }
        // Spot-check the interesting cells.
        assert!(l.get(0, 1), "new request must be L=1");
        assert!(l.get(66, 0), "new request must be L=1");
        assert!(!l.get(1, 2), "request satisfied in another slot stays");
        assert!(!l.get(3, 3), "request satisfied in this slot stays");
        assert!(l.get(5, 5), "dropped request in this slot releases");
    }
}
