//! The pre-scheduling logic of Table 1.
//!
//! For every port pair `(u, v)` the pre-scheduling logic compares the
//! request bit `R[u][v]`, the union bit `B*[u][v]` (connection established
//! in *some* slot) and the slot bit `B^(s)[u][v]` (connection established in
//! the slot currently being scheduled), and emits `L[u][v] = 1` iff the SL
//! array should change the state of that pair in slot `s`:
//!
//! | `R` | `B*` | `B^(s)` | case | `L` |
//! |-----|------|---------|------|-----|
//! | 0 | x | 0 | not requested, not in slot s          | 0 |
//! | 0 | x | 1 | not requested, realized in s: release | 1 |
//! | 1 | 1 | x | requested, realized somewhere: keep   | 0 |
//! | 1 | 0 | 0 | requested, nowhere realized: establish| 1 |
//!
//! i.e. `L = (!R & B^(s)) | (R & !B*)`.

use pms_bitmat::BitMatrix;

/// The four rows of Table 1, for introspection and testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreschedCase {
    /// Row 1: connection not requested and not realized in slot `s`.
    Idle,
    /// Row 2: connection not requested but realized in slot `s` — release it.
    ShouldRelease,
    /// Row 3: connection requested and already realized in some slot.
    AlreadyEstablished,
    /// Row 4: connection requested and realized in no slot — establish it.
    ShouldEstablish,
}

impl PreschedCase {
    /// The `L` output of Table 1 for this case.
    pub fn l(self) -> bool {
        matches!(
            self,
            PreschedCase::ShouldRelease | PreschedCase::ShouldEstablish
        )
    }
}

/// Classifies one `(R, B*, B^(s))` bit triple per Table 1.
///
/// # Panics
/// Panics on the physically impossible input `B^(s) = 1, B* = 0` (a slot
/// bit that is missing from the union of all slots).
pub fn presched_case(r: bool, b_star: bool, b_s: bool) -> PreschedCase {
    assert!(
        b_star || !b_s,
        "B*[u][v]=0 with B^(s)[u][v]=1 violates the B* = OR(B^(i)) invariant"
    );
    match (r, b_s) {
        (false, false) => PreschedCase::Idle,
        (false, true) => PreschedCase::ShouldRelease,
        (true, _) if b_star => PreschedCase::AlreadyEstablished,
        (true, _) => PreschedCase::ShouldEstablish,
    }
}

/// Computes the full `L` matrix word-parallel: `L = (!R & B^(s)) | (R & !B*)`.
///
/// # Panics
/// Panics if the matrix dimensions differ.
pub fn presched_matrix(r: &BitMatrix, b_star: &BitMatrix, b_s: &BitMatrix) -> BitMatrix {
    BitMatrix::zip3_with(r, b_star, b_s, |rw, bstw, bsw| (!rw & bsw) | (rw & !bstw))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive check of Table 1 over all legal bit triples.
    #[test]
    fn table1_exhaustive() {
        // (R, B*, B^(s)) -> expected L; B*=0 & Bs=1 is illegal.
        let rows = [
            (false, false, false, false), // idle
            (false, true, false, false),  // idle (established elsewhere, not requested, not in s)
            (false, true, true, true),    // release
            (true, true, false, false),   // already established (in another slot)
            (true, true, true, false),    // already established (in this slot)
            (true, false, false, true),   // establish
        ];
        for (r, bstar, bs, expect_l) in rows {
            let case = presched_case(r, bstar, bs);
            assert_eq!(case.l(), expect_l, "R={r} B*={bstar} Bs={bs} -> {case:?}");
        }
    }

    #[test]
    fn table1_case_identities() {
        assert_eq!(presched_case(false, false, false), PreschedCase::Idle);
        assert_eq!(
            presched_case(false, true, true),
            PreschedCase::ShouldRelease
        );
        assert_eq!(
            presched_case(true, true, false),
            PreschedCase::AlreadyEstablished
        );
        assert_eq!(
            presched_case(true, false, false),
            PreschedCase::ShouldEstablish
        );
    }

    #[test]
    #[should_panic(expected = "violates the B*")]
    fn impossible_input_panics() {
        presched_case(false, false, true);
    }

    #[test]
    fn matrix_matches_scalar() {
        let n = 67; // crosses a word boundary
        let r = BitMatrix::from_pairs(n, n, [(0, 1), (1, 2), (3, 3), (66, 0)]);
        let b_star = BitMatrix::from_pairs(n, n, [(1, 2), (5, 5), (3, 3)]);
        let b_s = BitMatrix::from_pairs(n, n, [(5, 5), (3, 3)]);
        let l = presched_matrix(&r, &b_star, &b_s);
        for u in 0..n {
            for v in 0..n {
                let expect = presched_case(r.get(u, v), b_star.get(u, v), b_s.get(u, v)).l();
                assert_eq!(l.get(u, v), expect, "mismatch at ({u},{v})");
            }
        }
        // Spot-check the interesting cells.
        assert!(l.get(0, 1), "new request must be L=1");
        assert!(l.get(66, 0), "new request must be L=1");
        assert!(!l.get(1, 2), "request satisfied in another slot stays");
        assert!(!l.get(3, 3), "request satisfied in this slot stays");
        assert!(l.get(5, 5), "dropped request in this slot releases");
    }
}
