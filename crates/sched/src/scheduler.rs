//! The assembled scheduler (Figure 2) with the paper's five extensions.
//!
//! Beyond the basic request/grant loop, §4 lists extensions this module
//! implements:
//!
//! 1. *multiple SL units* — callers may run [`Scheduler::pass_on_slot`] for
//!    several slots per SL clock (the simulator uses this for ablations);
//! 2. *multi-slot connections* — pairs marked via
//!    [`Scheduler::set_multislot`] are inserted into every slot with free
//!    ports, multiplying their bandwidth;
//! 3. *request latches* — with [`HoldPolicy::Latch`] a request stays
//!    asserted after the NIC drops it, keeping the connection cached until
//!    [`Scheduler::clear_latch`] (driven by a predictor time-out) or a
//!    flush;
//! 4. *flush* — [`Scheduler::flush_dynamic`] clears all dynamically
//!    scheduled connections (compiler-inserted phase boundaries);
//! 5. *preloaded configurations* — [`Scheduler::preload`] installs a
//!    predefined configuration into a register and protects it from
//!    dynamic scheduling until [`Scheduler::unload`].

use crate::presched::{presched_matrix, presched_matrix_pooled};
use crate::slarray::{sl_pass, Priority};
use pms_bitmat::BitMatrix;
use pms_par::ShardPool;
use std::sync::Arc;

/// What happens to a connection when its NIC drops the request signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HoldPolicy {
    /// Release at the next scheduling pass (the base design of Table 1).
    #[default]
    Drop,
    /// Latch the request: the connection stays established until the latch
    /// is explicitly cleared (extension 3, driven by a predictor).
    Latch,
}

/// Whether a connection may occupy more than one time slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BandwidthMode {
    /// Each connection lives in exactly one slot (`L` uses `B*`).
    #[default]
    SingleSlot,
    /// Connections marked via [`Scheduler::set_multislot`] are inserted
    /// into every slot with free ports (extension 2).
    PerPairMultiSlot,
}

/// Static scheduler parameters.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Number of ports `N`.
    pub ports: usize,
    /// Number of configuration registers `K`.
    pub slots: usize,
    /// Request-drop behaviour.
    pub hold: HoldPolicy,
    /// Multi-slot bandwidth support.
    pub bandwidth: BandwidthMode,
    /// Rotate the SL-array priority after every pass (fairness, §4).
    pub rotate_priority: bool,
}

impl SchedulerConfig {
    /// A scheduler with `ports` ports and `slots` registers, default
    /// policies (drop on request removal, single slot, rotating priority).
    pub fn new(ports: usize, slots: usize) -> Self {
        assert!(ports > 0, "scheduler needs at least one port");
        assert!(slots > 0, "scheduler needs at least one slot");
        Self {
            ports,
            slots,
            hold: HoldPolicy::Drop,
            bandwidth: BandwidthMode::SingleSlot,
            rotate_priority: true,
        }
    }

    /// Sets the hold policy.
    pub fn with_hold(mut self, hold: HoldPolicy) -> Self {
        self.hold = hold;
        self
    }

    /// Sets the bandwidth mode.
    pub fn with_bandwidth(mut self, bw: BandwidthMode) -> Self {
        self.bandwidth = bw;
        self
    }

    /// Enables or disables priority rotation.
    pub fn with_rotation(mut self, rotate: bool) -> Self {
        self.rotate_priority = rotate;
        self
    }
}

/// Per-slot admission of endpoint pairs into a fabric with internal
/// state — the hook multistage stage-graph routing plugs into
/// [`Scheduler::pass_routed`].
///
/// The router shadows the scheduler's registers with its own resource
/// model (e.g. per-stage configuration matrices and internal-line
/// occupancy). [`try_admit`](SlotRouter::try_admit) must be atomic:
/// either the connection is fully threaded through the fabric for that
/// slot (and `true` returned), or no router state changes. The scheduler
/// guarantees it never admits the same `(slot, u, v)` twice without an
/// intervening [`release`](SlotRouter::release), and only releases what
/// it admitted.
pub trait SlotRouter {
    /// Attempts to route `u -> v` through the fabric within time slot
    /// `slot`. Returns `false` (leaving no trace) if the fabric blocks.
    fn try_admit(&mut self, slot: usize, u: usize, v: usize) -> bool;

    /// Releases the resources `u -> v` holds in time slot `slot`.
    fn release(&mut self, slot: usize, u: usize, v: usize);

    /// Number of fabric stages behind this router. The default of 1
    /// marks a degenerate (single-crossbar) fabric; observability uses
    /// this to emit `route` span markers only for genuinely multi-stage
    /// routes, keeping the one-stage graph byte-identical to plain
    /// dynamic scheduling.
    fn stages(&self) -> usize {
        1
    }
}

/// Result of one scheduling pass.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// The slot the pass operated on; `None` if no dynamic slot exists.
    pub slot: Option<usize>,
    /// Connections established this pass.
    pub established: Vec<(usize, usize)>,
    /// Connections released this pass.
    pub released: Vec<(usize, usize)>,
    /// Requests denied this pass.
    pub denied: Vec<(usize, usize)>,
    /// Establishments revoked by the admission filter (fabric-constrained
    /// scheduling; empty for plain passes). These requests stay pending
    /// and retry on later passes, which target other slots.
    pub admission_denied: Vec<(usize, usize)>,
    /// Number of SL cells the availability ripple visited this pass — the
    /// dynamic ripple depth, bounded by `2N`. Feed it to
    /// [`SlTimingModel::latency_for_depth_ns`](crate::SlTimingModel::latency_for_depth_ns)
    /// for a data-dependent pass latency.
    pub ripple_depth: usize,
}

impl PassReport {
    fn empty() -> Self {
        Self {
            slot: None,
            established: Vec::new(),
            released: Vec::new(),
            denied: Vec::new(),
            admission_denied: Vec::new(),
            ripple_depth: 0,
        }
    }
}

/// Cumulative scheduler statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// SL passes executed.
    pub passes: u64,
    /// Connections established.
    pub establishes: u64,
    /// Connections released.
    pub releases: u64,
    /// Requests denied for lack of ports.
    pub denials: u64,
    /// Flush commands processed.
    pub flushes: u64,
}

/// The scheduler of Figure 2: `K` configuration registers plus the
/// scheduling logic, pre-scheduling logic, and SL/TDM counters.
///
/// ```
/// use pms_bitmat::BitMatrix;
/// use pms_sched::{Scheduler, SchedulerConfig};
///
/// let mut sched = Scheduler::new(SchedulerConfig::new(8, 2));
/// // Two NICs request the same output port: TDM resolves the conflict by
/// // placing them in different time slots.
/// let r = BitMatrix::from_pairs(8, 8, [(0, 5), (3, 5)]);
/// sched.pass(&r);
/// sched.pass(&r);
/// assert!(sched.established(0, 5) && sched.established(3, 5));
/// assert_ne!(sched.slots_of(0, 5), sched.slots_of(3, 5));
/// ```
pub struct Scheduler {
    cfg: SchedulerConfig,
    configs: Vec<BitMatrix>,
    preloaded: Vec<bool>,
    b_star: BitMatrix,
    latched: BitMatrix,
    multislot: BitMatrix,
    sl_cursor: usize,
    priority: Priority,
    stats: SchedStats,
    /// Worker lanes for the shard-local presched sweep; `None` (or a
    /// single-lane pool) keeps every pass fully sequential.
    pool: Option<Arc<ShardPool>>,
}

impl Scheduler {
    /// Creates a scheduler with all registers empty.
    pub fn new(cfg: SchedulerConfig) -> Self {
        let n = cfg.ports;
        let k = cfg.slots;
        Self {
            cfg,
            configs: vec![BitMatrix::square(n); k],
            preloaded: vec![false; k],
            b_star: BitMatrix::square(n),
            latched: BitMatrix::square(n),
            multislot: BitMatrix::square(n),
            sl_cursor: 0,
            priority: Priority::default(),
            stats: SchedStats::default(),
            pool: None,
        }
    }

    /// Attaches worker lanes for the shard-local parts of a pass (the
    /// Table 1 presched sweep). Pass results are byte-identical with or
    /// without a pool; a single-lane pool is ignored.
    pub fn set_pool(&mut self, pool: Arc<ShardPool>) {
        if pool.threads() > 1 {
            self.pool = Some(pool);
        }
    }

    /// Number of ports `N`.
    pub fn ports(&self) -> usize {
        self.cfg.ports
    }

    /// Number of configuration registers `K`.
    pub fn slots(&self) -> usize {
        self.cfg.slots
    }

    /// The configuration matrix of slot `s`.
    pub fn config(&self, s: usize) -> &BitMatrix {
        &self.configs[s]
    }

    /// All configuration matrices.
    pub fn configs(&self) -> &[BitMatrix] {
        &self.configs
    }

    /// The union matrix `B*` (every connection established in any slot).
    pub fn b_star(&self) -> &BitMatrix {
        &self.b_star
    }

    /// The latched request matrix (extension 3).
    pub fn latched(&self) -> &BitMatrix {
        &self.latched
    }

    /// Whether slot `s` holds a protected preloaded configuration.
    pub fn is_preloaded(&self, s: usize) -> bool {
        self.preloaded[s]
    }

    /// True if the connection `u -> v` is established in some slot.
    pub fn established(&self, u: usize, v: usize) -> bool {
        self.b_star.get(u, v)
    }

    /// The slots in which `u -> v` is established.
    pub fn slots_of(&self, u: usize, v: usize) -> Vec<usize> {
        (0..self.cfg.slots)
            .filter(|&s| self.configs[s].get(u, v))
            .collect()
    }

    /// The grant signal `G_u` for slot `s`: the output port input `u` may
    /// send to during that slot, if any. "At most one of `G_{u,v}` can be
    /// non-zero at any given time."
    pub fn grant(&self, s: usize, u: usize) -> Option<usize> {
        self.configs[s].iter_row_ones(u).next()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Marks (or unmarks) `u -> v` for multi-slot insertion (extension 2).
    /// Only meaningful under [`BandwidthMode::PerPairMultiSlot`].
    pub fn set_multislot(&mut self, u: usize, v: usize, enabled: bool) {
        self.multislot.set(u, v, enabled);
    }

    /// Installs a predefined configuration into register `s` and protects
    /// it from dynamic scheduling (extension 5).
    ///
    /// # Panics
    /// Panics if `config` is not a partial permutation of the right size.
    pub fn preload(&mut self, s: usize, config: BitMatrix) {
        assert_eq!(
            (config.rows(), config.cols()),
            (self.cfg.ports, self.cfg.ports),
            "preloaded configuration has wrong dimensions"
        );
        assert!(
            config.is_partial_permutation(),
            "preloaded configuration conflicts on a port"
        );
        self.configs[s] = config;
        self.preloaded[s] = true;
        self.recompute_b_star();
    }

    /// Evicts the configuration in register `s` (preloaded or dynamic) and
    /// unprotects the slot.
    pub fn unload(&mut self, s: usize) {
        self.configs[s].clear();
        self.preloaded[s] = false;
        self.recompute_b_star();
    }

    /// Removes the single connection `u -> v` from slot `s` (used by
    /// fabric-constrained scheduling to revoke an establishment that the
    /// fabric cannot realize).
    ///
    /// # Panics
    /// Panics if the connection is not present in that slot.
    pub fn revoke(&mut self, s: usize, u: usize, v: usize) {
        assert!(
            self.configs[s].get(u, v),
            "cannot revoke absent connection ({u},{v}) in slot {s}"
        );
        self.configs[s].set(u, v, false);
        self.recompute_b_star();
    }

    /// Re-inserts connection `u -> v` into slot `s` (the inverse of
    /// [`revoke`](Self::revoke)).
    ///
    /// # Panics
    /// Panics if inserting would conflict on a port within the slot.
    pub fn restore(&mut self, s: usize, u: usize, v: usize) {
        self.configs[s].set(u, v, true);
        assert!(
            self.configs[s].is_partial_permutation(),
            "restoring ({u},{v}) conflicts in slot {s}"
        );
        self.recompute_b_star();
    }

    /// Clears every *dynamic* (non-preloaded) register and all request
    /// latches — the compiler-inserted flush of extension 4 / §3.3.
    ///
    /// Returns the connections that were cleared (sorted, deduplicated),
    /// so callers can account for or trace each eviction.
    pub fn flush_dynamic(&mut self) -> Vec<(usize, usize)> {
        let mut cleared = Vec::new();
        for s in 0..self.cfg.slots {
            if !self.preloaded[s] {
                cleared.extend(self.configs[s].iter_ones());
                self.configs[s].clear();
            }
        }
        cleared.sort_unstable();
        cleared.dedup();
        self.latched.clear();
        self.stats.flushes += 1;
        self.recompute_b_star();
        cleared
    }

    /// Clears everything, including preloaded configurations.
    pub fn flush_all(&mut self) {
        for s in 0..self.cfg.slots {
            self.configs[s].clear();
            self.preloaded[s] = false;
        }
        self.latched.clear();
        self.stats.flushes += 1;
        self.recompute_b_star();
    }

    /// Clears the request latch for `u -> v`, letting the next pass release
    /// the connection if the NIC no longer requests it (predictor-driven
    /// eviction, extension 3).
    pub fn clear_latch(&mut self, u: usize, v: usize) {
        self.latched.set(u, v, false);
    }

    /// One SL clock: pick the next dynamic slot round-robin and schedule
    /// the request matrix `R` into it.
    ///
    /// Returns an empty report (slot `None`) when every register is
    /// preloaded — dynamic requests then have nowhere to go until a slot is
    /// unloaded.
    pub fn pass(&mut self, requests: &BitMatrix) -> PassReport {
        let Some(s) = self.next_dynamic_slot() else {
            return PassReport::empty();
        };
        self.pass_on_slot(s, requests)
    }

    /// Like [`pass`](Self::pass), but with an *admission filter*: after the
    /// SL array commits its establishments, they are re-admitted one by one
    /// (in ripple-priority order) and any whose addition makes the slot
    /// configuration unacceptable to `admit` is revoked and reported in
    /// [`PassReport::admission_denied`]. This is the hook for fabrics with
    /// internal blocking (§6): `admit` is typically
    /// `|cfg| fabric.is_valid(cfg)`.
    ///
    /// The filter must be *subset-closed* (accepting a configuration
    /// implies accepting any subset), which holds for all physical fabric
    /// constraints; the pre-pass configuration was itself admitted, so the
    /// re-admission scan is well-founded.
    pub fn pass_admitted(
        &mut self,
        requests: &BitMatrix,
        admit: impl Fn(&BitMatrix) -> bool,
    ) -> PassReport {
        let mut report = self.pass(requests);
        let Some(slot) = report.slot else {
            return report;
        };
        if report.established.is_empty() || admit(&self.configs[slot]) {
            return report;
        }
        // Strip all fresh establishments, then re-admit greedily. The
        // register bits are edited directly and B* is rebuilt once at the
        // end (recomputing it per toggle would make this pass O(E) times
        // more expensive).
        for &(u, v) in &report.established {
            self.configs[slot].set(u, v, false);
        }
        let mut admitted = Vec::new();
        let mut denied = Vec::new();
        for &(u, v) in &report.established {
            self.configs[slot].set(u, v, true);
            if admit(&self.configs[slot]) {
                admitted.push((u, v));
            } else {
                self.configs[slot].set(u, v, false);
                denied.push((u, v));
            }
        }
        self.recompute_b_star();
        self.stats.establishes -= denied.len() as u64;
        self.stats.denials += denied.len() as u64;
        report.established = admitted;
        report.admission_denied = denied;
        report
    }

    /// Like [`pass_admitted`](Self::pass_admitted), but against a stateful
    /// [`SlotRouter`]: released connections free their fabric resources
    /// first (so a release-and-establish rearrangement within one pass can
    /// reuse them), then each establishment is re-admitted one by one — it
    /// must pass both the stateless `admit` filter (fault masks; pass
    /// `|_| true` when unused) and the router's atomic multi-stage
    /// admission. Establishments the router blocks are revoked into
    /// [`PassReport::admission_denied`] and retry on later passes, which
    /// target other slots.
    ///
    /// A router that admits everything the slot's partial-permutation
    /// constraint allows (the degenerate one-stage crossbar graph) makes
    /// this exactly equivalent to [`pass`](Self::pass): same report, same
    /// statistics, same register contents.
    pub fn pass_routed(
        &mut self,
        requests: &BitMatrix,
        router: &mut dyn SlotRouter,
        admit: impl Fn(&BitMatrix) -> bool,
    ) -> PassReport {
        let mut report = self.pass(requests);
        let Some(slot) = report.slot else {
            return report;
        };
        for &(u, v) in &report.released {
            router.release(slot, u, v);
        }
        if report.established.is_empty() {
            return report;
        }
        // Strip all fresh establishments, then re-admit greedily in
        // ripple-priority order (see `pass_admitted` for the rationale;
        // the router's admission takes the place of full-configuration
        // validity, which has no meaning for stateful path assignment).
        for &(u, v) in &report.established {
            self.configs[slot].set(u, v, false);
        }
        let mut admitted = Vec::new();
        let mut denied = Vec::new();
        for &(u, v) in &report.established {
            self.configs[slot].set(u, v, true);
            if admit(&self.configs[slot]) && router.try_admit(slot, u, v) {
                admitted.push((u, v));
            } else {
                self.configs[slot].set(u, v, false);
                denied.push((u, v));
            }
        }
        self.recompute_b_star();
        self.stats.establishes -= denied.len() as u64;
        self.stats.denials += denied.len() as u64;
        report.established = admitted;
        report.admission_denied = denied;
        report
    }

    /// One SL clock targeted at slot `s` (used by multi-SL-unit ablations
    /// and by circuit switching, where `K = 1`).
    ///
    /// # Panics
    /// Panics if `s` is preloaded (protected) or out of range.
    pub fn pass_on_slot(&mut self, s: usize, requests: &BitMatrix) -> PassReport {
        assert!(s < self.cfg.slots, "slot {s} out of range");
        assert!(
            !self.preloaded[s],
            "slot {s} is preloaded; unload it before dynamic scheduling"
        );
        let r_eff = self.effective_requests(requests);
        let l = match self.cfg.bandwidth {
            BandwidthMode::SingleSlot => {
                presched_matrix_pooled(&r_eff, &self.b_star, &self.configs[s], self.pool.as_deref())
            }
            BandwidthMode::PerPairMultiSlot => {
                // L = (!R & Bs) | (R & !B*) | (R & M & !Bs):
                // marked pairs are (re)inserted into every slot with room.
                let base = presched_matrix(&r_eff, &self.b_star, &self.configs[s]);
                let extra =
                    BitMatrix::zip3_with(&r_eff, &self.multislot, &self.configs[s], |r, m, bs| {
                        r & m & !bs
                    });
                BitMatrix::zip2_with(&base, &extra, |a, b| a | b)
            }
        };
        let out = sl_pass(&l, &self.configs[s], self.priority);
        // Word-parallel commit of the pass: `B^(s) ^= T` (the toggle matrix
        // covers exactly the established and released pairs).
        self.configs[s].xor_assign(&out.toggles);
        self.recompute_b_star();
        self.stats.passes += 1;
        self.stats.establishes += out.established.len() as u64;
        self.stats.releases += out.released.len() as u64;
        self.stats.denials += out.denied.len() as u64;
        if self.cfg.rotate_priority {
            self.priority.row = (self.priority.row + 1) % self.cfg.ports;
            self.priority.col = (self.priority.col + 1) % self.cfg.ports;
        }
        PassReport {
            slot: Some(s),
            established: out.established,
            released: out.released,
            denied: out.denied,
            admission_denied: Vec::new(),
            ripple_depth: out.cells_visited,
        }
    }

    /// Runs passes over all dynamic slots until a full cycle changes
    /// nothing, or `max_passes` is reached. Returns the number of passes.
    pub fn settle(&mut self, requests: &BitMatrix, max_passes: usize) -> usize {
        let dynamic_slots = self.preloaded.iter().filter(|p| !**p).count();
        if dynamic_slots == 0 {
            return 0;
        }
        let mut quiet_streak = 0;
        for pass_no in 0..max_passes {
            let report = self.pass(requests);
            if report.established.is_empty() && report.released.is_empty() {
                quiet_streak += 1;
                if quiet_streak >= dynamic_slots {
                    return pass_no + 1;
                }
            } else {
                quiet_streak = 0;
            }
        }
        max_passes
    }

    /// Would a [`pass`](Self::pass) with an all-zero request matrix change
    /// nothing on every dynamic slot — no establishes, releases, *or*
    /// denials? True exactly when the idle change-request matrix `L` is
    /// zero for each dynamic register, which makes idle passes pure
    /// counter/rotation bookkeeping that
    /// [`advance_quiescent_pass`](Self::advance_quiescent_pass) and
    /// [`skip_quiescent_passes`](Self::skip_quiescent_passes) can replay
    /// without touching the matrices. Simulators use this as the gate for
    /// idle time-skipping.
    pub fn is_idle_quiescent(&self) -> bool {
        let mut prof = pms_trace::prof::ProfScope::enter(pms_trace::prof::ProfKernel::IdleScan);
        let matrix_words = (self.cfg.ports * self.cfg.ports.div_ceil(64)) as u64;
        let zero;
        let r_eff = match self.cfg.hold {
            HoldPolicy::Drop => {
                zero = BitMatrix::square(self.cfg.ports);
                &zero
            }
            // An empty request matrix OR-ed into the latch changes nothing,
            // so the effective idle requests are the latch itself.
            HoldPolicy::Latch => &self.latched,
        };
        (0..self.cfg.slots)
            .filter(|&s| !self.preloaded[s])
            .all(|s| {
                prof.add_words(matrix_words);
                let l = presched_matrix(r_eff, &self.b_star, &self.configs[s]);
                if !l.all_zero() {
                    return false;
                }
                match self.cfg.bandwidth {
                    BandwidthMode::SingleSlot => true,
                    // The multi-slot insertion term `R & M & !B^(s)` must
                    // also be zero for the pass to change nothing.
                    BandwidthMode::PerPairMultiSlot => BitMatrix::zip3_with(
                        r_eff,
                        &self.multislot,
                        &self.configs[s],
                        |r, m, bs| r & m & !bs,
                    )
                    .all_zero(),
                }
            })
    }

    /// Replays the bookkeeping of one quiescent [`pass`](Self::pass) — slot
    /// cursor advance, pass counter, priority rotation — without touching
    /// any matrix. Returns the slot the pass would have targeted, or `None`
    /// (and does nothing, exactly like `pass`) when every register is
    /// preloaded.
    ///
    /// Callers must have verified [`is_idle_quiescent`](Self::is_idle_quiescent);
    /// this is debug-asserted.
    pub fn advance_quiescent_pass(&mut self) -> Option<usize> {
        debug_assert!(self.is_idle_quiescent(), "pass would not be quiescent");
        let s = self.next_dynamic_slot()?;
        self.stats.passes += 1;
        if self.cfg.rotate_priority {
            self.priority.row = (self.priority.row + 1) % self.cfg.ports;
            self.priority.col = (self.priority.col + 1) % self.cfg.ports;
        }
        Some(s)
    }

    /// Closed-form batch of [`advance_quiescent_pass`](Self::advance_quiescent_pass):
    /// replays `count` quiescent passes in O(K) — the slot cursor walks the
    /// cyclic dynamic-slot sequence, the pass counter advances by `count`,
    /// and the priority rotates `count mod N` steps. Returns the slot of
    /// the final pass (`None` if every register is preloaded or `count` is
    /// zero, in which case nothing changes).
    pub fn skip_quiescent_passes(&mut self, count: u64) -> Option<usize> {
        if count == 0 {
            return None;
        }
        debug_assert!(self.is_idle_quiescent(), "passes would not be quiescent");
        let k = self.cfg.slots;
        let dynamic: Vec<usize> = (0..k).filter(|&s| !self.preloaded[s]).collect();
        if dynamic.is_empty() {
            return None;
        }
        let m = dynamic.len() as u64;
        // The first selected slot is the first dynamic slot at or after the
        // cursor (cyclically); the rest follow the cyclic dynamic order.
        let i0 = dynamic
            .iter()
            .position(|&s| s >= self.sl_cursor)
            .unwrap_or(0) as u64;
        let last = dynamic[((i0 + (count - 1) % m) % m) as usize];
        self.sl_cursor = (last + 1) % k;
        self.stats.passes += count;
        if self.cfg.rotate_priority {
            let step = (count % self.cfg.ports as u64) as usize;
            self.priority.row = (self.priority.row + step) % self.cfg.ports;
            self.priority.col = (self.priority.col + step) % self.cfg.ports;
        }
        Some(last)
    }

    fn effective_requests(&mut self, requests: &BitMatrix) -> BitMatrix {
        assert_eq!(
            (requests.rows(), requests.cols()),
            (self.cfg.ports, self.cfg.ports),
            "request matrix has wrong dimensions"
        );
        match self.cfg.hold {
            HoldPolicy::Drop => requests.clone(),
            HoldPolicy::Latch => {
                self.latched.or_assign(requests);
                self.latched.clone()
            }
        }
    }

    fn next_dynamic_slot(&mut self) -> Option<usize> {
        let k = self.cfg.slots;
        for step in 0..k {
            let s = (self.sl_cursor + step) % k;
            if !self.preloaded[s] {
                self.sl_cursor = (s + 1) % k;
                return Some(s);
            }
        }
        None
    }

    fn recompute_b_star(&mut self) {
        self.b_star = BitMatrix::union(self.configs.iter());
    }

    /// Debug-check the scheduler's core invariants; used by tests and
    /// property-based fuzzing.
    pub fn check_invariants(&self) {
        for (s, c) in self.configs.iter().enumerate() {
            assert!(
                c.is_partial_permutation(),
                "slot {s} is not a partial permutation"
            );
        }
        let union = BitMatrix::union(self.configs.iter());
        assert_eq!(union, self.b_star, "B* out of sync with registers");
        // A pair may occupy several slots only if it is multi-slot marked
        // or one of its copies lives in a preloaded register (a preloaded
        // pattern may legitimately duplicate a dynamically established
        // connection; the dynamic copy is released once its request drops).
        for (u, v) in self.b_star.iter_ones() {
            let slots = self.slots_of(u, v);
            if slots.len() > 1 {
                let allowed = self.multislot.get(u, v) || slots.iter().any(|&s| self.preloaded[s]);
                assert!(
                    allowed,
                    "dynamic connection ({u},{v}) duplicated across slots {slots:?}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs(n: usize, pairs: &[(usize, usize)]) -> BitMatrix {
        BitMatrix::from_pairs(n, n, pairs.iter().copied())
    }

    #[test]
    fn establishes_and_persists() {
        let mut s = Scheduler::new(SchedulerConfig::new(8, 4));
        let r = reqs(8, &[(0, 1), (2, 3)]);
        let rep = s.pass(&r);
        assert_eq!(rep.slot, Some(0));
        assert_eq!(rep.established.len(), 2);
        assert!(s.established(0, 1) && s.established(2, 3));
        // A second pass on another slot does not duplicate the connections.
        let rep2 = s.pass(&r);
        assert_eq!(rep2.slot, Some(1));
        assert!(rep2.established.is_empty());
        s.check_invariants();
    }

    #[test]
    fn releases_when_request_drops() {
        let mut s = Scheduler::new(SchedulerConfig::new(8, 2));
        s.pass(&reqs(8, &[(0, 1)]));
        assert!(s.established(0, 1));
        // Request gone; the connection is in slot 0, so it is released when
        // the round-robin cursor returns there.
        let empty = reqs(8, &[]);
        s.pass(&empty); // slot 1: nothing
        let rep = s.pass(&empty); // slot 0: release
        assert_eq!(rep.released, vec![(0, 1)]);
        assert!(!s.established(0, 1));
        s.check_invariants();
    }

    #[test]
    fn conflicting_requests_spread_across_slots() {
        // Two inputs want the same output: TDM puts them in different slots
        // instead of tearing either down.
        let mut s = Scheduler::new(SchedulerConfig::new(8, 4));
        let r = reqs(8, &[(0, 5), (1, 5)]);
        s.pass(&r); // slot 0 takes one
        s.pass(&r); // slot 1 takes the other
        assert!(s.established(0, 5) && s.established(1, 5));
        let s0 = s.slots_of(0, 5);
        let s1 = s.slots_of(1, 5);
        assert_eq!(s0.len(), 1);
        assert_eq!(s1.len(), 1);
        assert_ne!(s0[0], s1[0], "conflicting pairs must use distinct slots");
        s.check_invariants();
    }

    #[test]
    fn circuit_switching_is_k_equals_one() {
        // "circuit switching amounts to TDM with a multiplexing degree of
        // one": with K=1 a conflicting request waits for a release.
        let mut s = Scheduler::new(SchedulerConfig::new(8, 1).with_rotation(false));
        s.pass(&reqs(8, &[(0, 5)]));
        let rep = s.pass(&reqs(8, &[(0, 5), (1, 5)]));
        assert_eq!(rep.denied, vec![(1, 5)]);
        // First circuit torn down -> second can establish (release and
        // establish happen in the same pass thanks to the ripple).
        let rep = s.pass(&reqs(8, &[(1, 5)]));
        assert_eq!(rep.released, vec![(0, 5)]);
        assert_eq!(rep.established, vec![(1, 5)]);
        s.check_invariants();
    }

    #[test]
    fn grants_match_configs() {
        let mut s = Scheduler::new(SchedulerConfig::new(8, 2));
        s.pass(&reqs(8, &[(3, 6)]));
        assert_eq!(s.grant(0, 3), Some(6));
        assert_eq!(s.grant(0, 2), None);
        assert_eq!(s.grant(1, 3), None);
    }

    #[test]
    fn preload_protects_slot_from_dynamic_scheduling() {
        let mut s = Scheduler::new(SchedulerConfig::new(8, 3));
        let pattern = BitMatrix::from_pairs(8, 8, (0..8).map(|u| (u, (u + 1) % 8)));
        s.preload(2, pattern.clone());
        assert!(s.is_preloaded(2));
        assert_eq!(s.config(2), &pattern);
        // Dynamic passes only touch slots 0 and 1.
        for _ in 0..6 {
            s.pass(&reqs(8, &[(0, 3)]));
        }
        assert_eq!(s.config(2), &pattern, "preloaded slot must be untouched");
        assert!(s.established(0, 3));
        s.check_invariants();
    }

    #[test]
    fn preloaded_connection_suppresses_dynamic_duplicate() {
        let mut s = Scheduler::new(SchedulerConfig::new(8, 3));
        s.preload(2, BitMatrix::from_pairs(8, 8, [(0, 3)]));
        // A dynamic request for the same pair is already satisfied by B*.
        let rep = s.pass(&reqs(8, &[(0, 3)]));
        assert!(rep.established.is_empty());
        assert_eq!(s.slots_of(0, 3), vec![2]);
    }

    #[test]
    fn all_slots_preloaded_yields_empty_pass() {
        let mut s = Scheduler::new(SchedulerConfig::new(4, 2));
        s.preload(0, BitMatrix::square(4));
        s.preload(1, BitMatrix::square(4));
        let rep = s.pass(&reqs(4, &[(0, 1)]));
        assert_eq!(rep.slot, None);
        assert!(!s.established(0, 1));
    }

    #[test]
    fn flush_dynamic_keeps_preloaded() {
        let mut s = Scheduler::new(SchedulerConfig::new(8, 3));
        s.preload(2, BitMatrix::from_pairs(8, 8, [(7, 7)]));
        s.pass(&reqs(8, &[(0, 1)]));
        let cleared = s.flush_dynamic();
        assert_eq!(cleared, vec![(0, 1)], "flush reports the evicted pairs");
        assert!(!s.established(0, 1));
        assert!(s.established(7, 7));
        assert_eq!(s.stats().flushes, 1);
        s.check_invariants();
    }

    #[test]
    fn pass_reports_ripple_depth() {
        let mut s = Scheduler::new(SchedulerConfig::new(8, 2));
        // Two fresh requests: the ripple visits both L=1 cells.
        let rep = s.pass(&reqs(8, &[(0, 1), (2, 3)]));
        assert_eq!(rep.ripple_depth, 2);
        // Persisting connections produce no change requests -> no cells.
        let rep = s.pass(&reqs(8, &[(0, 1), (2, 3)]));
        assert_eq!(rep.ripple_depth, 0);
        // An all-preloaded scheduler has no dynamic pass at all.
        let mut p = Scheduler::new(SchedulerConfig::new(4, 1));
        p.preload(0, BitMatrix::square(4));
        assert_eq!(p.pass(&reqs(4, &[(0, 1)])).ripple_depth, 0);
    }

    #[test]
    fn flush_all_clears_everything() {
        let mut s = Scheduler::new(SchedulerConfig::new(8, 3));
        s.preload(2, BitMatrix::from_pairs(8, 8, [(7, 7)]));
        s.pass(&reqs(8, &[(0, 1)]));
        s.flush_all();
        assert!(s.b_star().all_zero());
        assert!(!s.is_preloaded(2));
    }

    #[test]
    fn latch_holds_connection_after_request_drop() {
        let mut s = Scheduler::new(SchedulerConfig::new(8, 2).with_hold(HoldPolicy::Latch));
        s.pass(&reqs(8, &[(0, 1)]));
        // Request drops, but the latch keeps it established.
        let empty = reqs(8, &[]);
        s.pass(&empty);
        s.pass(&empty);
        assert!(s.established(0, 1), "latched connection must persist");
        // Predictor clears the latch -> next visit to slot 0 releases it.
        s.clear_latch(0, 1);
        s.pass(&empty);
        s.pass(&empty);
        assert!(!s.established(0, 1));
        s.check_invariants();
    }

    #[test]
    fn multislot_pair_occupies_every_free_slot() {
        let mut s = Scheduler::new(
            SchedulerConfig::new(8, 3).with_bandwidth(BandwidthMode::PerPairMultiSlot),
        );
        s.set_multislot(0, 1, true);
        let r = reqs(8, &[(0, 1)]);
        s.pass(&r);
        s.pass(&r);
        s.pass(&r);
        assert_eq!(s.slots_of(0, 1), vec![0, 1, 2], "3x bandwidth");
        // Unmarked pairs still get exactly one slot.
        let r2 = reqs(8, &[(0, 1), (2, 3)]);
        s.pass(&r2);
        s.pass(&r2);
        assert_eq!(s.slots_of(2, 3).len(), 1);
    }

    #[test]
    fn settle_reaches_fixpoint() {
        let mut s = Scheduler::new(SchedulerConfig::new(16, 4));
        // 8 conflicting requests on one output need 4 slots; 4 fit.
        let r = reqs(16, &(0..8).map(|u| (u, 0)).collect::<Vec<_>>());
        let passes = s.settle(&r, 64);
        assert!(passes <= 64);
        let established: usize = (0..8).filter(|&u| s.established(u, 0)).count();
        assert_eq!(established, 4, "one connection to output 0 per slot");
        s.check_invariants();
    }

    #[test]
    fn rotation_gives_fairness_over_passes() {
        // Without rotation, input 0 wins output 9 forever; with rotation
        // other inputs eventually win when slot contents churn. Here we
        // verify rotation advances the priority state at all.
        let mut s = Scheduler::new(SchedulerConfig::new(4, 1));
        let before = s.priority;
        s.pass(&reqs(4, &[]));
        assert_ne!(s.priority, before);
        let mut s2 = Scheduler::new(SchedulerConfig::new(4, 1).with_rotation(false));
        let before2 = s2.priority;
        s2.pass(&reqs(4, &[]));
        assert_eq!(s2.priority, before2);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Scheduler::new(SchedulerConfig::new(8, 1));
        s.pass(&reqs(8, &[(0, 1), (1, 1)]));
        let st = s.stats();
        assert_eq!(st.passes, 1);
        assert_eq!(st.establishes, 1);
        assert_eq!(st.denials, 1);
    }

    #[test]
    fn quiescent_skip_matches_real_passes() {
        // Mixed preloaded/dynamic slots, a latched connection, rotation on:
        // `count` idle passes and one skip call must leave identical state.
        for count in [0u64, 1, 2, 3, 7, 29] {
            let build = || {
                let mut s = Scheduler::new(SchedulerConfig::new(8, 4).with_hold(HoldPolicy::Latch));
                s.preload(2, BitMatrix::from_pairs(8, 8, [(7, 7)]));
                s.pass(&reqs(8, &[(0, 1)]));
                s
            };
            let empty = reqs(8, &[]);
            let mut by_pass = build();
            assert!(by_pass.is_idle_quiescent());
            let mut last = None;
            for _ in 0..count {
                last = by_pass.pass(&empty).slot;
            }
            let mut by_skip = build();
            assert_eq!(by_skip.skip_quiescent_passes(count), last);
            assert_eq!(by_skip.stats(), by_pass.stats());
            assert_eq!(by_skip.priority, by_pass.priority);
            assert_eq!(by_skip.sl_cursor, by_pass.sl_cursor);
            // Per-tick variant agrees too.
            let mut by_tick = build();
            let mut tick_last = None;
            for _ in 0..count {
                tick_last = by_tick.advance_quiescent_pass();
            }
            assert_eq!(tick_last, last);
            assert_eq!(by_tick.priority, by_pass.priority);
            assert_eq!(by_tick.sl_cursor, by_pass.sl_cursor);
            // After the skip both schedulers react identically to traffic.
            let r = reqs(8, &[(3, 4), (5, 4)]);
            let a = by_pass.pass(&r);
            let b = by_skip.pass(&r);
            assert_eq!(a.slot, b.slot);
            assert_eq!(a.established, b.established);
            assert_eq!(a.denied, b.denied);
        }
    }

    #[test]
    fn idle_quiescence_gate() {
        // Drop policy: an established connection makes idle passes release
        // it, so the scheduler is NOT idle-quiescent until it drains.
        let mut s = Scheduler::new(SchedulerConfig::new(8, 2));
        s.pass(&reqs(8, &[(0, 1)]));
        assert!(!s.is_idle_quiescent());
        let empty = reqs(8, &[]);
        s.pass(&empty);
        s.pass(&empty);
        assert!(s.is_idle_quiescent());
        // Latch policy: the latch keeps the connection requested, so the
        // same situation IS quiescent.
        let mut l = Scheduler::new(SchedulerConfig::new(8, 2).with_hold(HoldPolicy::Latch));
        l.pass(&reqs(8, &[(0, 1)]));
        assert!(l.is_idle_quiescent());
        // ... until the predictor clears the latch.
        l.clear_latch(0, 1);
        assert!(!l.is_idle_quiescent());
    }

    #[test]
    fn all_preloaded_skip_is_noop() {
        let mut s = Scheduler::new(SchedulerConfig::new(4, 1));
        s.preload(0, BitMatrix::square(4));
        let before = s.stats();
        assert_eq!(s.skip_quiescent_passes(10), None);
        assert_eq!(s.advance_quiescent_pass(), None);
        assert_eq!(s.stats(), before, "no dynamic slot: nothing advances");
    }

    #[test]
    #[should_panic(expected = "is preloaded")]
    fn pass_on_preloaded_slot_panics() {
        let mut s = Scheduler::new(SchedulerConfig::new(4, 2));
        s.preload(1, BitMatrix::square(4));
        s.pass_on_slot(1, &BitMatrix::square(4));
    }

    #[test]
    #[should_panic(expected = "conflicts on a port")]
    fn preload_rejects_conflicting_config() {
        let mut s = Scheduler::new(SchedulerConfig::new(4, 2));
        s.preload(0, BitMatrix::from_pairs(4, 4, [(0, 1), (2, 1)]));
    }
}
