//! A single scheduling-logic cell `SL_{u,v}` (Table 2, Figure 3).
//!
//! Each cell receives the change-request bit `L_{u,v}`, the downward
//! availability ripple `A_{u,v}` (output port `v` occupied so far) and the
//! rightward ripple `D_{u,v}` (input port `u` occupied so far), and produces
//! the toggle signal `T_{u,v}` plus the propagated ripples `A_{u+1,v}`,
//! `D_{u,v+1}`:
//!
//! | `L` | `A` | `D` | action | `T` | `A'` | `D'` |
//! |-----|-----|-----|--------|-----|------|------|
//! | 0 | x | x | no change                    | 0 | `A` | `D` |
//! | 1 | 1 | 1 | release connection in slot s | 1 | 0 | 0 |
//! | 1 | 1 | 0 | denied: output busy          | 0 | `A` | `D` |
//! | 1 | 0 | 1 | denied: input busy           | 0 | `A` | `D` |
//! | 1 | 0 | 0 | establish connection         | 1 | 1 | 1 |
//!
//! ### Erratum note
//!
//! Table 2 distinguishes *release* from *establish* purely by `(A, D)`:
//! a release cell always sees `(1,1)` because its own connection occupies
//! both ports. However an **establish** request whose input *and* output are
//! both occupied by *other* persisting connections also presents
//! `(L,A,D) = (1,1,1)`; toggling there would set `B^(s)[u][v]` 0 → 1 and
//! corrupt the permutation. Real hardware co-locates the cell with the
//! configuration register bit, so we model the cell with the explicit
//! `b_s` input the table's annotation (`B^(s)` 1 → 0) presumes: the
//! `(1,1,1)` row toggles only when `b_s = 1`; with `b_s = 0` the request is
//! denied. The exhaustive unit test `table2_exhaustive` covers the
//! published rows; `establish_with_both_ports_busy_is_denied` covers the
//! erratum row.

/// Inputs of one SL cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellInput {
    /// Change request from the pre-scheduling logic (Table 1).
    pub l: bool,
    /// Availability ripple for output port `v`: `true` = occupied.
    pub a: bool,
    /// Availability ripple for input port `u`: `true` = occupied.
    pub d: bool,
    /// The co-located configuration register bit `B^(s)[u][v]`.
    pub b_s: bool,
}

/// What the cell decided to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellAction {
    /// `L = 0`: nothing to do for this pair.
    NoChange,
    /// Connection released in slot `s` (`B^(s)` 1 → 0).
    Release,
    /// Connection established in slot `s` (`B^(s)` 0 → 1).
    Establish,
    /// Connection needed but an input or output port is unavailable.
    Denied,
}

/// Outputs of one SL cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellOutput {
    /// Toggle signal for the configuration register bit.
    pub t: bool,
    /// Ripple toward the next row (`A_{u+1,v}`).
    pub a_next: bool,
    /// Ripple toward the next column (`D_{u,v+1}`).
    pub d_next: bool,
    /// Decoded action, for statistics and tests.
    pub action: CellAction,
}

/// Evaluates one scheduling-logic cell per Table 2 (with the erratum
/// guard described in the module docs).
pub fn sl_cell(input: CellInput) -> CellOutput {
    let CellInput { l, a, d, b_s } = input;
    if !l {
        return CellOutput {
            t: false,
            a_next: a,
            d_next: d,
            action: CellAction::NoChange,
        };
    }
    match (a, d) {
        (true, true) if b_s => CellOutput {
            // Release: both ports were held by this very connection.
            t: true,
            a_next: false,
            d_next: false,
            action: CellAction::Release,
        },
        (false, false) => CellOutput {
            // Establish: claim both ports.
            t: true,
            a_next: true,
            d_next: true,
            action: CellAction::Establish,
        },
        _ => CellOutput {
            // Resources not available (including the erratum case
            // (1,1) with b_s = 0).
            t: false,
            a_next: a,
            d_next: d,
            action: CellAction::Denied,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive check of the five published rows of Table 2.
    #[test]
    fn table2_exhaustive() {
        // (L, A, D, b_s) -> (T, A', D')
        // Rows with L=0 pass everything through with T=0.
        for a in [false, true] {
            for d in [false, true] {
                for b_s in [false, true] {
                    let out = sl_cell(CellInput {
                        l: false,
                        a,
                        d,
                        b_s,
                    });
                    assert!(!out.t);
                    assert_eq!(out.a_next, a);
                    assert_eq!(out.d_next, d);
                    assert_eq!(out.action, CellAction::NoChange);
                }
            }
        }
        // Row 2: L=1, A=1, D=1 with the register bit set -> release.
        let out = sl_cell(CellInput {
            l: true,
            a: true,
            d: true,
            b_s: true,
        });
        assert_eq!((out.t, out.a_next, out.d_next), (true, false, false));
        assert_eq!(out.action, CellAction::Release);
        // Rows 3-4: one port busy -> denied, ripples unchanged.
        for (a, d) in [(true, false), (false, true)] {
            for b_s in [false, true] {
                // b_s=1 with exactly one busy ripple cannot occur in a legal
                // pass but the combinational cell still passes through.
                let out = sl_cell(CellInput { l: true, a, d, b_s });
                assert_eq!((out.t, out.a_next, out.d_next), (false, a, d));
                assert_eq!(out.action, CellAction::Denied);
            }
        }
        // Row 5: both free -> establish, ripples claimed.
        let out = sl_cell(CellInput {
            l: true,
            a: false,
            d: false,
            b_s: false,
        });
        assert_eq!((out.t, out.a_next, out.d_next), (true, true, true));
        assert_eq!(out.action, CellAction::Establish);
    }

    /// The erratum case: an establish request whose input and output are
    /// both occupied by *other* connections must be denied, not toggled.
    #[test]
    fn establish_with_both_ports_busy_is_denied() {
        let out = sl_cell(CellInput {
            l: true,
            a: true,
            d: true,
            b_s: false,
        });
        assert!(!out.t, "toggling here would corrupt B^(s)");
        assert_eq!(out.action, CellAction::Denied);
        assert!(out.a_next && out.d_next, "ports stay occupied");
    }
}
