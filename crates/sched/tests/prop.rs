//! Property-based fuzzing of the scheduler invariants (DESIGN.md §8) and
//! of the word-scanning SL pass against its per-bit reference.

use pms_bitmat::BitMatrix;
use pms_sched::{
    sl_pass, slarray::reference, BandwidthMode, HoldPolicy, Priority, Scheduler, SchedulerConfig,
};
use proptest::prelude::*;

/// One step of a random scheduler workout.
#[derive(Debug, Clone)]
enum Op {
    Pass(Vec<(usize, usize)>),
    Flush,
    Preload(usize, Vec<(usize, usize)>),
    Unload(usize),
    ClearLatch(usize, usize),
}

fn op_strategy(n: usize, k: usize) -> impl Strategy<Value = Op> {
    let pair = (0..n, 0..n);
    let pairs = prop::collection::vec(pair, 0..12);
    prop_oneof![
        6 => pairs.clone().prop_map(Op::Pass),
        1 => Just(Op::Flush),
        1 => (0..k, prop::collection::vec((0..n, 0..n), 0..4))
            .prop_map(|(s, p)| Op::Preload(s, p)),
        1 => (0..k).prop_map(Op::Unload),
        1 => (0..n, 0..n).prop_map(|(u, v)| Op::ClearLatch(u, v)),
    ]
}

/// Turns arbitrary pairs into a conflict-free preload pattern by first-fit.
fn to_partial_perm(n: usize, pairs: &[(usize, usize)]) -> BitMatrix {
    let mut used_in = vec![false; n];
    let mut used_out = vec![false; n];
    let mut m = BitMatrix::square(n);
    for &(u, v) in pairs {
        if !used_in[u] && !used_out[v] {
            used_in[u] = true;
            used_out[v] = true;
            m.set(u, v, true);
        }
    }
    m
}

fn run_ops(mut sched: Scheduler, n: usize, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Pass(pairs) => {
                let r = BitMatrix::from_pairs(n, n, pairs.iter().copied());
                sched.pass(&r);
            }
            Op::Flush => {
                sched.flush_dynamic();
            }
            Op::Preload(s, pairs) => sched.preload(*s, to_partial_perm(n, pairs)),
            Op::Unload(s) => sched.unload(*s),
            Op::ClearLatch(u, v) => sched.clear_latch(*u, *v),
        }
        sched.check_invariants();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scheduler_invariants_hold_under_random_ops(
        ops in prop::collection::vec(op_strategy(16, 4), 1..60)
    ) {
        let sched = Scheduler::new(SchedulerConfig::new(16, 4));
        run_ops(sched, 16, &ops);
    }

    #[test]
    fn scheduler_invariants_hold_with_latch_policy(
        ops in prop::collection::vec(op_strategy(12, 3), 1..60)
    ) {
        let sched = Scheduler::new(
            SchedulerConfig::new(12, 3).with_hold(HoldPolicy::Latch),
        );
        run_ops(sched, 12, &ops);
    }

    #[test]
    fn scheduler_invariants_hold_without_rotation(
        ops in prop::collection::vec(op_strategy(16, 2), 1..40)
    ) {
        let sched = Scheduler::new(
            SchedulerConfig::new(16, 2).with_rotation(false),
        );
        run_ops(sched, 16, &ops);
    }

    /// Every persistent, conflict-free request set is fully established
    /// after settling, regardless of arrival order.
    #[test]
    fn conflict_free_requests_all_establish(
        perm in prop::collection::vec(0usize..16, 16)
    ) {
        // Build a partial permutation u -> perm[u], dropping duplicates.
        let pairs = to_partial_perm(16, &perm.iter().copied().enumerate().collect::<Vec<_>>());
        let mut sched = Scheduler::new(SchedulerConfig::new(16, 4));
        let r = pairs.clone();
        sched.settle(&r, 128);
        for (u, v) in pairs.iter_ones() {
            prop_assert!(sched.established(u, v), "({u},{v}) not established");
        }
        sched.check_invariants();
    }

    /// With K slots, up to K conflicting requests per output all establish.
    #[test]
    fn k_way_conflicts_fill_k_slots(out_port in 0usize..8, senders in prop::collection::btree_set(0usize..8, 1..8)) {
        let k = 4;
        let mut sched = Scheduler::new(SchedulerConfig::new(8, k));
        let pairs: Vec<(usize, usize)> = senders.iter().map(|&u| (u, out_port)).collect();
        let r = BitMatrix::from_pairs(8, 8, pairs.iter().copied());
        sched.settle(&r, 64);
        let established = pairs.iter().filter(|&&(u, v)| sched.established(u, v)).count();
        prop_assert_eq!(established, senders.len().min(k));
        sched.check_invariants();
    }

    /// The word-scanning `sl_pass` is bit-for-bit equivalent to the
    /// per-bit `reference` pass: same actions in the same ripple order,
    /// same priority rotation, same `cells_visited` — across random
    /// sizes including non-multiples of 64 (tail-word handling) and
    /// random priority origins.
    #[test]
    fn fast_sl_pass_equals_reference(
        (n, l_cells, b_cells, pri_row, pri_col) in (1usize..150).prop_flat_map(|n| {
            (
                Just(n),
                prop::collection::btree_set((0..n, 0..n), 0..80),
                prop::collection::btree_set((0..n, 0..n), 0..80),
                0..n,
                0..n,
            )
        })
    ) {
        let l = BitMatrix::from_pairs(n, n, l_cells.iter().copied());
        let b_s = BitMatrix::from_pairs(n, n, b_cells.iter().copied());
        let pri = Priority { row: pri_row, col: pri_col };
        let fast = sl_pass(&l, &b_s, pri);
        let slow = reference::sl_pass(&l, &b_s, pri);
        prop_assert_eq!(&fast.established, &slow.established, "establish sets differ");
        prop_assert_eq!(&fast.released, &slow.released, "release sets differ");
        prop_assert_eq!(&fast.denied, &slow.denied, "denied sets differ");
        prop_assert_eq!(&fast.toggles, &slow.toggles, "toggle matrices differ");
        prop_assert_eq!(fast.cells_visited, slow.cells_visited, "cells_visited differs");
    }

    /// Multi-slot marking never breaks per-slot permutation validity.
    #[test]
    fn multislot_preserves_invariants(
        marks in prop::collection::vec((0usize..8, 0usize..8), 0..6),
        ops in prop::collection::vec(op_strategy(8, 3), 1..30),
    ) {
        let mut sched = Scheduler::new(
            SchedulerConfig::new(8, 3).with_bandwidth(BandwidthMode::PerPairMultiSlot),
        );
        for (u, v) in marks {
            sched.set_multislot(u, v, true);
        }
        run_ops(sched, 8, &ops);
    }
}
