//! Trace sinks: where emitted events go.
//!
//! Simulators hold a concrete [`Tracer`] enum rather than a
//! `Box<dyn TraceSink>` so the disabled path is one perfectly-predicted
//! branch (`enabled()` returning `false`) instead of a virtual call.
//! Emit sites are written as
//!
//! ```ignore
//! if self.tracer.enabled() {
//!     self.tracer.emit(now, slot, TraceEvent::SlotAdvanced { slot_idx });
//! }
//! ```
//!
//! so with [`Tracer::Null`] no event is even constructed.

use crate::event::{TraceEvent, TraceRecord};
use crate::json;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Anything that can receive trace records.
pub trait TraceSink {
    /// Receives one record.
    fn record(&mut self, rec: TraceRecord);

    /// Whether recording does anything; callers may skip event
    /// construction when `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl TraceSink for NullTracer {
    fn record(&mut self, _rec: TraceRecord) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// Fixed-capacity ring buffer keeping the most recent records.
///
/// Appends never allocate after construction; once full, the oldest
/// record is overwritten. Suited to flight-recorder style debugging of
/// long runs.
#[derive(Debug, Clone)]
pub struct RingTracer {
    buf: Vec<TraceRecord>,
    cap: usize,
    next: usize,
    total: u64,
}

impl RingTracer {
    /// Ring holding the last `cap` records (`cap` must be nonzero).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be nonzero");
        RingTracer {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            total: 0,
        }
    }

    /// Total records ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        if self.buf.len() < self.cap {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }

    /// Drops all held records (capacity and total count are kept; the
    /// flight recorder empties its window after each dump).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
    }
}

impl TraceSink for RingTracer {
    #[inline]
    fn record(&mut self, rec: TraceRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.next] = rec;
            self.next = (self.next + 1) % self.cap;
        }
        self.total += 1;
    }
}

/// Unbounded in-memory sink for tests: keeps every record in order.
#[derive(Debug, Clone, Default)]
pub struct VecTracer {
    /// All records, in emission order.
    pub records: Vec<TraceRecord>,
}

impl VecTracer {
    /// An empty sink.
    pub fn new() -> Self {
        VecTracer::default()
    }
}

impl TraceSink for VecTracer {
    #[inline]
    fn record(&mut self, rec: TraceRecord) {
        self.records.push(rec);
    }
}

/// Streams records as JSON Lines (one record object per line) through a
/// buffered writer. Useful for runs too long to hold in memory.
#[derive(Debug)]
pub struct JsonlTracer {
    out: BufWriter<File>,
    written: u64,
}

impl JsonlTracer {
    /// Creates/truncates `path` and streams records to it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlTracer {
            out: BufWriter::new(File::create(path)?),
            written: 0,
        })
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

impl TraceSink for JsonlTracer {
    // Outlined: serialization is heavy, and keeping it out of
    // `Tracer::emit`'s inlined match keeps the hot arms hot.
    #[inline(never)]
    fn record(&mut self, rec: TraceRecord) {
        let line = record_json(&rec).render();
        // A full disk mid-trace should not take the simulation down.
        let _ = writeln!(self.out, "{line}");
        self.written += 1;
    }
}

impl Drop for JsonlTracer {
    /// Best-effort flush so a tracer dropped without an explicit
    /// [`Tracer::finish`] still leaves complete final lines on disk
    /// (binaries should still call `finish()` to *observe* I/O errors —
    /// a drop can only swallow them).
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Clone-able handle onto a shared, thread-safe record buffer.
///
/// Built for live telemetry: the simulator emits through a
/// [`Tracer::Shared`] holding one clone while an HTTP server thread
/// snapshots another clone mid-run. The lock is per-record, which is fine
/// off the simulator's criterion-measured paths (live serving is an
/// explicitly opted-in mode).
#[derive(Debug, Clone, Default)]
pub struct SharedTracer {
    records: std::sync::Arc<std::sync::Mutex<Vec<TraceRecord>>>,
}

impl SharedTracer {
    /// An empty shared buffer.
    pub fn new() -> Self {
        SharedTracer::default()
    }

    /// A consistent copy of all records emitted so far, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.lock().expect("shared tracer poisoned").clone()
    }

    /// Number of records emitted so far.
    pub fn len(&self) -> usize {
        self.records.lock().expect("shared tracer poisoned").len()
    }

    /// Whether no records have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for SharedTracer {
    // Outlined: the mutex makes this arm heavyweight anyway.
    #[inline(never)]
    fn record(&mut self, rec: TraceRecord) {
        self.records
            .lock()
            .expect("shared tracer poisoned")
            .push(rec);
    }
}

/// Writes a slice of records to `path` as JSON Lines — the batch
/// counterpart of streaming through a [`JsonlTracer`]; both produce
/// byte-identical files for the same records.
pub fn write_jsonl(path: impl AsRef<Path>, records: &[TraceRecord]) -> io::Result<()> {
    let mut t = JsonlTracer::create(path)?;
    for rec in records {
        t.record(*rec);
    }
    t.flush()
}

/// Renders one record as a JSON object (used by JSONL and tests).
pub fn record_json(rec: &TraceRecord) -> json::Json {
    use json::Json;
    let mut fields: Vec<(String, Json)> = vec![
        ("kind".to_string(), Json::str(rec.event.kind())),
        ("t_ns".to_string(), Json::UInt(rec.t_ns)),
        ("slot".to_string(), Json::UInt(rec.slot as u64)),
    ];
    let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
    match rec.event {
        TraceEvent::MsgInjected {
            src,
            dst,
            bytes,
            msg,
        } => {
            push("src", src.into());
            push("dst", dst.into());
            push("bytes", bytes.into());
            push("msg", msg.into());
        }
        TraceEvent::MsgDelivered {
            src,
            dst,
            bytes,
            msg,
            latency_ns,
        } => {
            push("src", src.into());
            push("dst", dst.into());
            push("bytes", bytes.into());
            push("msg", msg.into());
            push("latency_ns", latency_ns.into());
        }
        TraceEvent::ConnRequested { src, dst } => {
            push("src", src.into());
            push("dst", dst.into());
        }
        TraceEvent::ConnEstablished { src, dst, slot_idx } => {
            push("src", src.into());
            push("dst", dst.into());
            push("slot_idx", slot_idx.into());
        }
        TraceEvent::ConnEvicted { src, dst, cause } => {
            push("src", src.into());
            push("dst", dst.into());
            push("cause", Json::str(cause.label()));
        }
        TraceEvent::SlotAdvanced { slot_idx } => {
            push("slot_idx", slot_idx.into());
        }
        TraceEvent::SchedPass {
            passes,
            ripple_depth,
            established,
            released,
            denied,
        } => {
            push("passes", passes.into());
            push("ripple_depth", ripple_depth.into());
            push("established", established.into());
            push("released", released.into());
            push("denied", denied.into());
        }
        TraceEvent::PreloadApplied {
            slot_idx,
            connections,
        } => {
            push("slot_idx", slot_idx.into());
            push("connections", connections.into());
        }
        TraceEvent::PhaseFlush { cleared } => {
            push("cleared", cleared.into());
        }
        TraceEvent::FaultInjected {
            fault,
            class,
            src,
            dst,
        }
        | TraceEvent::FaultCleared {
            fault,
            class,
            src,
            dst,
        } => {
            push("fault", fault.into());
            push("class", Json::str(class.label()));
            push("src", src.into());
            push("dst", dst.into());
        }
        TraceEvent::MsgRetried {
            src,
            dst,
            msg,
            attempt,
        } => {
            push("src", src.into());
            push("dst", dst.into());
            push("msg", msg.into());
            push("attempt", attempt.into());
        }
        TraceEvent::MsgAbandoned {
            src,
            dst,
            msg,
            retries,
        } => {
            push("src", src.into());
            push("dst", dst.into());
            push("msg", msg.into());
            push("retries", retries.into());
        }
        TraceEvent::RequestEnqueued {
            req,
            tenant,
            src,
            dst,
        } => {
            push("req", req.into());
            push("tenant", tenant.into());
            push("src", src.into());
            push("dst", dst.into());
        }
        TraceEvent::RequestGranted {
            req,
            tenant,
            src,
            dst,
            wait_ns,
        } => {
            push("req", req.into());
            push("tenant", tenant.into());
            push("src", src.into());
            push("dst", dst.into());
            push("wait_ns", wait_ns.into());
        }
        TraceEvent::RequestRejected {
            req,
            tenant,
            src,
            dst,
            cause,
        } => {
            push("req", req.into());
            push("tenant", tenant.into());
            push("src", src.into());
            push("dst", dst.into());
            push("cause", Json::str(cause.label()));
        }
        TraceEvent::BatchAdmitted {
            batch,
            capacity,
            selected,
            granted,
            denied,
            pending,
        } => {
            push("batch", batch.into());
            push("capacity", capacity.into());
            push("selected", selected.into());
            push("granted", granted.into());
            push("denied", denied.into());
            push("pending", pending.into());
        }
        TraceEvent::SpanStart {
            span,
            parent,
            phase,
            msg,
            src,
            dst,
        } => {
            push("span", span.into());
            push("parent", parent.into());
            push("phase", Json::str(phase.label()));
            push("msg", msg.into());
            push("src", src.into());
            push("dst", dst.into());
        }
        TraceEvent::SpanEnd { span, phase, msg } => {
            push("span", span.into());
            push("phase", Json::str(phase.label()));
            push("msg", msg.into());
        }
        TraceEvent::MetricsSnapshot {
            seq,
            delivered,
            bytes,
            established,
            evicted,
            denied,
            retries,
            abandoned,
            faults_injected,
            faults_cleared,
            setups,
            setup_total_ns,
            setup_max_ns,
            passes,
            enqueued,
            granted,
            rejected,
            batches,
        } => {
            push("seq", seq.into());
            push("delivered", delivered.into());
            push("bytes", bytes.into());
            push("established", established.into());
            push("evicted", evicted.into());
            push("denied", denied.into());
            push("retries", retries.into());
            push("abandoned", abandoned.into());
            push("faults_injected", faults_injected.into());
            push("faults_cleared", faults_cleared.into());
            push("setups", setups.into());
            push("setup_total_ns", setup_total_ns.into());
            push("setup_max_ns", setup_max_ns.into());
            push("passes", passes.into());
            push("enqueued", enqueued.into());
            push("granted", granted.into());
            push("rejected", rejected.into());
            push("batches", batches.into());
        }
        TraceEvent::AlertRaised {
            rule,
            seq,
            value,
            threshold,
        } => {
            push("rule", rule.into());
            push("seq", seq.into());
            push("value", value.into());
            push("threshold", threshold.into());
        }
        TraceEvent::AlertCleared { rule, seq } => {
            push("rule", rule.into());
            push("seq", seq.into());
        }
    }
    Json::Object(fields)
}

/// A [`TraceSink`] stacking the observability pipeline in front of any
/// inner tracer: every record is folded into the snapshot collector, and
/// when a slot window closes, the synthesized
/// [`MetricsSnapshot`](TraceEvent::MetricsSnapshot) record — plus any
/// [`AlertRaised`](TraceEvent::AlertRaised)/
/// [`AlertCleared`](TraceEvent::AlertCleared) records from the alert
/// engine — is forwarded to the inner tracer *before* the record that
/// closed the window, preserving `t_ns` order.
///
/// The inner tracer may be anything, including [`Tracer::Null`] (collect
/// the series but keep no trace — the degradation sweep's mode) or a
/// flight recorder (alert records trigger its dumps).
#[derive(Debug)]
pub struct PipelineTracer {
    collector: crate::timeseries::SnapshotCollector,
    engine: Option<crate::alerts::AlertEngine>,
    inner: Tracer,
}

impl PipelineTracer {
    /// A pipeline with the given snapshot cadence, optional alert rules,
    /// and downstream tracer.
    pub fn new(
        cfg: crate::timeseries::SnapshotConfig,
        rules: Option<crate::alerts::AlertRules>,
        inner: Tracer,
    ) -> Self {
        PipelineTracer {
            collector: crate::timeseries::SnapshotCollector::new(cfg),
            engine: rules.map(crate::alerts::AlertEngine::new),
            inner,
        }
    }

    /// The snapshot collector (bounded ring, emission counts).
    pub fn collector(&self) -> &crate::timeseries::SnapshotCollector {
        &self.collector
    }

    /// The alert engine, if rules were given.
    pub fn engine(&self) -> Option<&crate::alerts::AlertEngine> {
        self.engine.as_ref()
    }

    /// The downstream tracer.
    pub fn inner(&self) -> &Tracer {
        &self.inner
    }

    /// The pipeline's per-record tap: one boundary compare, a fold into
    /// the open window, and a forward to the inner sink — without ever
    /// materializing an intermediate [`TraceRecord`], so the event value
    /// moves through exactly as it would into a bare sink.
    #[inline]
    pub(crate) fn tap_emit(&mut self, t_ns: u64, slot: u32, event: TraceEvent) {
        if self.collector.crosses_boundary(t_ns) {
            self.roll(t_ns);
        }
        self.collector.fold_parts(t_ns, slot, &event);
        self.inner.emit(t_ns, slot, event);
    }

    /// Closes the window(s) an incoming timestamp crosses and forwards
    /// the snapshot (and alert) records downstream. Cold: runs once per
    /// window boundary, never per record.
    #[cold]
    fn roll(&mut self, t_ns: u64) {
        let mut snaps = Vec::new();
        self.collector.roll_window(t_ns, &mut snaps);
        self.drain(snaps);
    }

    fn drain(&mut self, snaps: Vec<crate::timeseries::Snapshot>) {
        let mut alerts = Vec::new();
        for snap in snaps {
            let rec = snap.to_record();
            self.inner.emit(rec.t_ns, rec.slot, rec.event);
            if let Some(engine) = &mut self.engine {
                alerts.clear();
                engine.on_snapshot(&snap, &mut alerts);
                for a in &alerts {
                    self.inner.emit(a.t_ns, a.slot, a.event);
                }
            }
        }
    }

    /// Flushes the final partial window (see [`Tracer::seal`]).
    pub fn seal(&mut self, t_ns: u64, slot: u32) {
        let mut snaps = Vec::new();
        self.collector.seal(t_ns, slot, &mut snaps);
        self.drain(snaps);
    }
}

impl TraceSink for PipelineTracer {
    #[inline]
    fn record(&mut self, rec: TraceRecord) {
        self.tap_emit(rec.t_ns, rec.slot, rec.event);
    }
}

/// The concrete sink carried by the simulators.
///
/// [`Tracer::enabled`] and [`Tracer::emit`] are `#[inline]`, so the
/// `Null` arm costs one predictable branch per emit site and the event
/// payload is never built.
#[derive(Debug, Default)]
pub enum Tracer {
    /// Tracing off (the default): every emit is a no-op.
    #[default]
    Null,
    /// Keep the last N records in a ring.
    Ring(RingTracer),
    /// Keep every record in memory (tests, exporters).
    Vec(VecTracer),
    /// Stream records to a JSONL file.
    Jsonl(JsonlTracer),
    /// Flight recorder: ring buffer dumped to JSONL on anomalies.
    Flight(Box<crate::flight::FlightRecorder>),
    /// Shared in-memory buffer snapshotted by a telemetry server thread.
    Shared(SharedTracer),
    /// Snapshot/alert pipeline stacked in front of an inner tracer.
    Pipeline(Box<PipelineTracer>),
}

impl Tracer {
    /// A [`VecTracer`]-backed tracer.
    pub fn vec() -> Self {
        Tracer::Vec(VecTracer::new())
    }

    /// A [`RingTracer`]-backed tracer with the given capacity.
    pub fn ring(cap: usize) -> Self {
        Tracer::Ring(RingTracer::new(cap))
    }

    /// A flight-recorder tracer dumping anomaly windows to `path`.
    pub fn flight(path: impl Into<std::path::PathBuf>, cfg: crate::flight::FlightConfig) -> Self {
        Tracer::Flight(Box::new(crate::flight::FlightRecorder::new(path, cfg)))
    }

    /// A tracer emitting into `handle`'s shared buffer; keep another
    /// clone of `handle` to snapshot the run from a server thread.
    pub fn shared(handle: SharedTracer) -> Self {
        Tracer::Shared(handle)
    }

    /// A snapshot/alert pipeline in front of `inner` (see
    /// [`PipelineTracer`]).
    pub fn pipeline(
        cfg: crate::timeseries::SnapshotConfig,
        rules: Option<crate::alerts::AlertRules>,
        inner: Tracer,
    ) -> Self {
        Tracer::Pipeline(Box::new(PipelineTracer::new(cfg, rules, inner)))
    }

    /// Whether emitting does anything; guard event construction on this.
    #[inline]
    pub fn enabled(&self) -> bool {
        !matches!(self, Tracer::Null)
    }

    /// Records an event stamped with time and slot.
    #[inline]
    pub fn emit(&mut self, t_ns: u64, slot: u32, event: TraceEvent) {
        match self {
            Tracer::Null => {}
            Tracer::Ring(t) => t.record(TraceRecord { t_ns, slot, event }),
            Tracer::Vec(t) => t.record(TraceRecord { t_ns, slot, event }),
            Tracer::Jsonl(t) => t.record(TraceRecord { t_ns, slot, event }),
            Tracer::Flight(t) => t.record(TraceRecord { t_ns, slot, event }),
            Tracer::Shared(t) => t.record(TraceRecord { t_ns, slot, event }),
            Tracer::Pipeline(t) => t.record(TraceRecord { t_ns, slot, event }),
        }
    }

    /// The collected records, oldest first (empty for `Null`/`Jsonl` —
    /// JSONL records are already on disk; the flight recorder reports
    /// its current, not-yet-dumped window; the pipeline reports whatever
    /// its inner tracer holds, synthesized records included).
    pub fn records(&self) -> Vec<TraceRecord> {
        match self {
            Tracer::Null => Vec::new(),
            Tracer::Ring(t) => t.records(),
            Tracer::Vec(t) => t.records.clone(),
            Tracer::Jsonl(_) => Vec::new(),
            Tracer::Flight(t) => t.records(),
            Tracer::Shared(t) => t.snapshot(),
            Tracer::Pipeline(t) => t.inner().records(),
        }
    }

    /// The snapshot series this tracer knows about: the pipeline's
    /// bounded delta-ring, or — for plain tracers — the
    /// `MetricsSnapshot` records already in the stream.
    pub fn snapshots(&self) -> Vec<crate::timeseries::Snapshot> {
        match self {
            Tracer::Pipeline(t) => t.collector().recent().copied().collect(),
            other => crate::timeseries::series_from_records(&other.records()),
        }
    }

    /// Closes the snapshot pipeline's final partial window at `t_ns`
    /// (no-op for non-pipeline tracers). Simulators call this once, after
    /// their last event and before [`finish`](Tracer::finish).
    pub fn seal(&mut self, t_ns: u64, slot: u32) {
        if let Tracer::Pipeline(t) = self {
            t.seal(t_ns, slot);
        }
    }

    /// Flushes any buffered output (JSONL, flight-recorder dumps).
    pub fn finish(&mut self) -> io::Result<()> {
        match self {
            Tracer::Jsonl(t) => t.flush(),
            Tracer::Flight(t) => t.flush(),
            Tracer::Pipeline(t) => t.inner.finish(),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ns: u64) -> TraceRecord {
        TraceRecord {
            t_ns,
            slot: 0,
            event: TraceEvent::SlotAdvanced { slot_idx: 0 },
        }
    }

    #[test]
    fn null_tracer_is_disabled() {
        let mut t = Tracer::Null;
        assert!(!t.enabled());
        t.emit(1, 0, TraceEvent::PhaseFlush { cleared: 1 });
        assert!(t.records().is_empty());
    }

    #[test]
    fn vec_tracer_keeps_order() {
        let mut t = Tracer::vec();
        assert!(t.enabled());
        for i in 0..5 {
            t.emit(i, 0, TraceEvent::SlotAdvanced { slot_idx: i as u32 });
        }
        let recs = t.records();
        assert_eq!(recs.len(), 5);
        assert!(recs.windows(2).all(|w| w[0].t_ns < w[1].t_ns));
    }

    #[test]
    fn ring_tracer_keeps_most_recent() {
        let mut ring = RingTracer::new(4);
        for i in 0..10u64 {
            ring.record(rec(i));
        }
        assert_eq!(ring.total_recorded(), 10);
        let recs = ring.records();
        assert_eq!(
            recs.iter().map(|r| r.t_ns).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn ring_tracer_partial_fill() {
        let mut ring = RingTracer::new(8);
        ring.record(rec(1));
        ring.record(rec(2));
        assert_eq!(ring.records().len(), 2);
    }

    #[test]
    fn record_json_has_kind_time_slot() {
        let j = record_json(&TraceRecord {
            t_ns: 42,
            slot: 3,
            event: TraceEvent::ConnEvicted {
                src: 1,
                dst: 2,
                cause: crate::event::EvictCause::PhaseFlush,
            },
        });
        let s = j.render();
        assert!(s.contains(r#""kind":"conn-evicted""#), "{s}");
        assert!(s.contains(r#""t_ns":42"#));
        assert!(s.contains(r#""slot":3"#));
        assert!(s.contains(r#""cause":"phase-flush""#));
    }

    #[test]
    fn shared_tracer_snapshots_mid_run() {
        let handle = SharedTracer::new();
        let mut t = Tracer::shared(handle.clone());
        assert!(t.enabled());
        t.emit(1, 0, TraceEvent::SlotAdvanced { slot_idx: 0 });
        assert_eq!(handle.len(), 1, "server-side clone sees live records");
        t.emit(2, 1, TraceEvent::PhaseFlush { cleared: 3 });
        assert_eq!(handle.snapshot().len(), 2);
        assert_eq!(t.records().len(), 2);
    }

    #[test]
    fn pipeline_interleaves_snapshots_in_time_order() {
        use crate::timeseries::SnapshotConfig;
        let mut t = Tracer::pipeline(
            SnapshotConfig {
                window_ns: 1000,
                ring: 16,
            },
            None,
            Tracer::vec(),
        );
        assert!(t.enabled());
        let deliver = |msg: u32| TraceEvent::MsgDelivered {
            src: 0,
            dst: 1,
            bytes: 64,
            msg,
            latency_ns: 10,
        };
        t.emit(100, 0, deliver(0));
        t.emit(900, 0, deliver(1));
        t.emit(1500, 1, deliver(2));
        t.seal(1600, 1);
        let recs = t.records();
        // window 0 snapshot lands between the 900 and 1500 records,
        // stamped at the 1000 ns boundary; seal flushes window 1.
        let kinds: Vec<&str> = recs.iter().map(|r| r.event.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "msg-delivered",
                "msg-delivered",
                "metrics-snapshot",
                "msg-delivered",
                "metrics-snapshot"
            ]
        );
        assert!(recs.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        let snaps = t.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!((snaps[0].seq, snaps[0].delivered), (0, 2));
        assert_eq!((snaps[1].seq, snaps[1].delivered), (1, 1));
    }

    #[test]
    fn pipeline_runs_alert_engine_after_each_snapshot() {
        use crate::alerts::AlertRules;
        use crate::timeseries::SnapshotConfig;
        let rules = AlertRules::parse(
            "threshold name=deliveries metric=delivered op=ge value=2 clear-for=1\n",
        )
        .unwrap();
        let mut t = Tracer::pipeline(
            SnapshotConfig {
                window_ns: 1000,
                ring: 16,
            },
            Some(rules),
            Tracer::vec(),
        );
        let deliver = |msg: u32| TraceEvent::MsgDelivered {
            src: 0,
            dst: 1,
            bytes: 8,
            msg,
            latency_ns: 1,
        };
        // Window 0: two deliveries (breaches). Window 1: one (clears).
        t.emit(100, 0, deliver(0));
        t.emit(200, 0, deliver(1));
        t.emit(1100, 1, deliver(2));
        t.seal(1200, 1);
        let kinds: Vec<&str> = t.records().iter().map(|r| r.event.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "msg-delivered",
                "msg-delivered",
                "metrics-snapshot",
                "alert-raised",
                "msg-delivered",
                "metrics-snapshot",
                "alert-cleared"
            ]
        );
    }

    #[test]
    fn jsonl_tracer_writes_lines() {
        let path = std::env::temp_dir().join("pms-trace-jsonl-test.jsonl");
        {
            let mut t = Tracer::Jsonl(JsonlTracer::create(&path).unwrap());
            t.emit(1, 0, TraceEvent::SlotAdvanced { slot_idx: 0 });
            t.emit(2, 1, TraceEvent::PhaseFlush { cleared: 3 });
            t.finish().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        std::fs::remove_file(&path).ok();
    }
}
