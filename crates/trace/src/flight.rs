//! The flight recorder: a bounded ring of recent events that is flushed
//! to JSONL only when an alert fires.
//!
//! Long runs cannot afford to stream every event to disk, but the events
//! *leading up to* a pathology are exactly what a post-mortem needs. The
//! recorder keeps the last `capacity` records in memory and dumps the
//! ring whenever an [`AlertRaised`](TraceEvent::AlertRaised) record flows
//! through — prefixed by a `flight-trigger` marker line identifying the
//! rule that fired, the value it saw, and the threshold it breached.
//!
//! Who raises the alerts is the snapshot/alert pipeline
//! ([`Tracer::pipeline`](crate::Tracer::pipeline)) stacked in front: the
//! declarative rules in `pms_trace::alerts` subsume the hardcoded p99
//! setup-latency trigger earlier revisions wired into this type.
//! `simulate --flight-recorder` uses
//! [`AlertRules::default_flight`](crate::alerts::AlertRules::default_flight)
//! when no rules file is given.

use crate::event::TraceEvent;
use crate::json::ParseError;
use crate::sink::{record_json, RingTracer, TraceSink};
use crate::{Json, TraceRecord};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;

/// A malformed line in a flight-recorder dump: which line (1-based), what
/// it contained, and the underlying JSON error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightParseError {
    /// 1-based line number within the dump text.
    pub line: usize,
    /// The offending line, verbatim.
    pub context: String,
    /// The JSON parse error for that line.
    pub error: ParseError,
}

impl fmt::Display for FlightParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flight dump line {}: {} in {:?}",
            self.line, self.error, self.context
        )
    }
}

impl std::error::Error for FlightParseError {}

/// Parses a flight-recorder JSONL dump back into one [`Json`] value per
/// line (markers included, blank lines skipped).
///
/// A replay must not die mid-stream without saying *where*: a bad line is
/// reported with its 1-based line number and verbatim content rather than
/// a bare [`ParseError`] whose byte offset is relative to a line the
/// caller can no longer identify.
pub fn parse_flight_dump(text: &str) -> Result<Vec<Json>, FlightParseError> {
    let mut docs = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Json::parse(line) {
            Ok(v) => docs.push(v),
            Err(error) => {
                return Err(FlightParseError {
                    line: idx + 1,
                    context: line.to_string(),
                    error,
                })
            }
        }
    }
    Ok(docs)
}

/// Tuning for the [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Ring capacity: how many recent records each dump carries.
    pub capacity: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig { capacity: 4096 }
    }
}

/// A [`TraceSink`] implementing the flight-recorder pattern: buffer
/// everything, write only alert-triggered windows.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: RingTracer,
    path: PathBuf,
    /// Opened lazily on the first trigger, so an alert-free run leaves
    /// no file behind.
    out: Option<BufWriter<File>>,
    triggers: u64,
    written: u64,
}

impl FlightRecorder {
    /// A recorder dumping to `path` with the given ring capacity.
    pub fn new(path: impl Into<PathBuf>, cfg: FlightConfig) -> Self {
        FlightRecorder {
            ring: RingTracer::new(cfg.capacity),
            path: path.into(),
            out: None,
            triggers: 0,
            written: 0,
        }
    }

    /// Times an alert has triggered a dump.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// JSONL lines written across all dumps (markers + records).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The records currently buffered (oldest first).
    pub fn records(&self) -> Vec<TraceRecord> {
        self.ring.records()
    }

    /// Flushes buffered output, if any dump has opened the file.
    pub fn flush(&mut self) -> io::Result<()> {
        match &mut self.out {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }

    fn dump(&mut self, trigger: TraceRecord, rule: u32, seq: u32, value: u64, threshold: u64) {
        // A full disk must not take the simulation down: I/O errors are
        // swallowed (matching JsonlTracer), the trigger is still counted.
        self.triggers += 1;
        if self.out.is_none() {
            match File::create(&self.path) {
                Ok(f) => self.out = Some(BufWriter::new(f)),
                Err(_) => return,
            }
        }
        let out = self.out.as_mut().expect("opened above");
        let marker = Json::obj([
            ("kind", Json::str("flight-trigger")),
            ("t_ns", trigger.t_ns.into()),
            ("slot", trigger.slot.into()),
            ("rule", rule.into()),
            ("seq", seq.into()),
            ("value", value.into()),
            ("threshold", threshold.into()),
            ("trigger_seq", self.triggers.into()),
            ("events", self.ring.records().len().into()),
        ]);
        let mut lines = 1u64;
        let _ = writeln!(out, "{}", marker.render());
        for rec in self.ring.records() {
            let _ = writeln!(out, "{}", record_json(&rec).render());
            lines += 1;
        }
        self.written += lines;
        // The window is consumed: the next dump starts fresh rather than
        // re-reporting the same events.
        self.ring.clear();
    }
}

impl TraceSink for FlightRecorder {
    // Outlined: keeps `Tracer::emit`'s inlined match small.
    #[inline(never)]
    fn record(&mut self, rec: TraceRecord) {
        self.ring.record(rec);
        if let TraceEvent::AlertRaised {
            rule,
            seq,
            value,
            threshold,
        } = rec.event
        {
            self.dump(rec, rule, seq, value, threshold);
        }
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alerts::AlertRules;
    use crate::event::TraceEvent;
    use crate::sink::Tracer;
    use crate::timeseries::SnapshotConfig;

    fn tmpfile(name: &str) -> PathBuf {
        std::env::temp_dir().join(name)
    }

    fn deliver(msg: u32) -> TraceEvent {
        TraceEvent::MsgDelivered {
            src: 0,
            dst: 1,
            bytes: 64,
            msg,
            latency_ns: 10,
        }
    }

    #[test]
    fn no_alert_no_file() {
        let path = tmpfile("pms-flight-quiet.jsonl");
        std::fs::remove_file(&path).ok();
        let mut fr = FlightRecorder::new(&path, FlightConfig::default());
        for i in 0..100u64 {
            fr.record(TraceRecord {
                t_ns: i * 100,
                slot: i as u32,
                event: deliver(i as u32),
            });
        }
        assert_eq!(fr.triggers(), 0);
        assert!(!path.exists(), "no alert, no file");
    }

    #[test]
    fn alert_record_dumps_ring_with_marker() {
        let path = tmpfile("pms-flight-alert.jsonl");
        std::fs::remove_file(&path).ok();
        let mut fr = FlightRecorder::new(&path, FlightConfig { capacity: 16 });
        for i in 0..8u64 {
            fr.record(TraceRecord {
                t_ns: i * 100,
                slot: 0,
                event: deliver(i as u32),
            });
        }
        fr.record(TraceRecord {
            t_ns: 900,
            slot: 0,
            event: TraceEvent::AlertRaised {
                rule: 2,
                seq: 5,
                value: 42,
                threshold: 10,
            },
        });
        assert_eq!(fr.triggers(), 1);
        fr.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len() as u64, fr.written());
        let marker = Json::parse(lines[0]).unwrap();
        assert_eq!(
            marker.get("kind").and_then(Json::as_str),
            Some("flight-trigger")
        );
        assert_eq!(marker.get("rule").and_then(Json::as_u64), Some(2));
        assert_eq!(marker.get("value").and_then(Json::as_u64), Some(42));
        assert_eq!(marker.get("threshold").and_then(Json::as_u64), Some(10));
        let docs = parse_flight_dump(&text).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(docs.len(), lines.len(), "one document per dump line");
        // The ring was consumed by the dump.
        assert!(fr.records().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pipeline_over_flight_dumps_on_rule_fire() {
        let path = tmpfile("pms-flight-pipeline.jsonl");
        std::fs::remove_file(&path).ok();
        let rules =
            AlertRules::parse("threshold name=hot metric=delivered op=ge value=3\n").unwrap();
        let mut t = Tracer::pipeline(
            SnapshotConfig {
                window_ns: 1000,
                ring: 8,
            },
            Some(rules),
            Tracer::flight(&path, FlightConfig { capacity: 64 }),
        );
        for i in 0..5u32 {
            t.emit(100 + i as u64 * 50, 0, deliver(i));
        }
        t.seal(2000, 0);
        t.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let docs = parse_flight_dump(&text).unwrap();
        assert_eq!(
            docs[0].get("kind").and_then(Json::as_str),
            Some("flight-trigger")
        );
        assert_eq!(docs[0].get("rule").and_then(Json::as_u64), Some(0));
        // The dump carries the window's records, alert included.
        assert!(
            docs.iter()
                .any(|d| d.get("kind").and_then(Json::as_str) == Some("alert-raised")),
            "alert record is part of the dumped window"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_dump_line_is_located_not_fatal() {
        let text = "{\"kind\":\"flight-trigger\"}\n{\"kind\":\"slot-start\"}\n{oops\n";
        let err = parse_flight_dump(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.context, "{oops");
        let msg = err.to_string();
        assert!(msg.contains("line 3") && msg.contains("{oops"), "{msg}");
    }
}
