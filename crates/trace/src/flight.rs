//! The flight recorder: a bounded ring of recent events that is flushed
//! to JSONL only when an anomaly detector fires.
//!
//! Long runs cannot afford to stream every event to disk, but the events
//! *leading up to* a pathology (a connection that waited far longer than
//! its peers to be established) are exactly what a post-mortem needs.
//! The recorder keeps the last `capacity` records in memory, watches
//! every `ConnRequested -> ConnEstablished` pair online, and when a setup
//! latency lands above the configured quantile of all setups seen so far
//! (after a warmup, and above an absolute floor), dumps the ring to the
//! output file as JSON Lines — prefixed by a `flight-trigger` marker line
//! identifying the offending connection and the threshold it breached.
//!
//! The detector is integer-only on the hot path: the quantile comes from
//! the same log2 [`Histogram`] the metrics registry uses, so arming and
//! checking cost a `leading_zeros` and two comparisons.

use crate::event::TraceEvent;
use crate::json::ParseError;
use crate::metrics::Histogram;
use crate::sink::{record_json, RingTracer, TraceSink};
use crate::{Json, TraceRecord};
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;

/// A malformed line in a flight-recorder dump: which line (1-based), what
/// it contained, and the underlying JSON error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightParseError {
    /// 1-based line number within the dump text.
    pub line: usize,
    /// The offending line, verbatim.
    pub context: String,
    /// The JSON parse error for that line.
    pub error: ParseError,
}

impl fmt::Display for FlightParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flight dump line {}: {} in {:?}",
            self.line, self.error, self.context
        )
    }
}

impl std::error::Error for FlightParseError {}

/// Parses a flight-recorder JSONL dump back into one [`Json`] value per
/// line (markers included, blank lines skipped).
///
/// A replay must not die mid-stream without saying *where*: a bad line is
/// reported with its 1-based line number and verbatim content rather than
/// a bare [`ParseError`] whose byte offset is relative to a line the
/// caller can no longer identify.
pub fn parse_flight_dump(text: &str) -> Result<Vec<Json>, FlightParseError> {
    let mut docs = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Json::parse(line) {
            Ok(v) => docs.push(v),
            Err(error) => {
                return Err(FlightParseError {
                    line: idx + 1,
                    context: line.to_string(),
                    error,
                })
            }
        }
    }
    Ok(docs)
}

/// Tuning for the [`FlightRecorder`]'s anomaly detector.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Ring capacity: how many recent records each dump carries.
    pub capacity: usize,
    /// Setup-latency quantile that arms the trigger (e.g. `0.99`).
    pub quantile: f64,
    /// Setup samples required before the detector may fire (a cold
    /// histogram would flag the very first latency as anomalous).
    pub warmup_samples: u64,
    /// Absolute floor: latencies at or below this never fire, whatever
    /// the quantile says (suppresses noise on uniformly fast runs).
    pub min_latency_ns: u64,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            capacity: 4096,
            quantile: 0.99,
            warmup_samples: 32,
            min_latency_ns: 0,
        }
    }
}

/// A [`TraceSink`] implementing the flight-recorder pattern.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: RingTracer,
    cfg: FlightConfig,
    path: PathBuf,
    /// Opened lazily on the first trigger, so an anomaly-free run leaves
    /// no file behind.
    out: Option<BufWriter<File>>,
    /// Outstanding `ConnRequested` times per (src, dst).
    pending: HashMap<(u32, u32), u64>,
    setup: Histogram,
    triggers: u64,
    written: u64,
}

impl FlightRecorder {
    /// A recorder dumping to `path` with the given detector tuning.
    pub fn new(path: impl Into<PathBuf>, cfg: FlightConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.quantile),
            "quantile {} outside [0, 1]",
            cfg.quantile
        );
        FlightRecorder {
            ring: RingTracer::new(cfg.capacity),
            cfg,
            path: path.into(),
            out: None,
            pending: HashMap::new(),
            setup: Histogram::new(),
            triggers: 0,
            written: 0,
        }
    }

    /// Times the anomaly detector has fired.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    /// JSONL lines written across all dumps (markers + records).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Setup latencies observed so far (the detector's evidence).
    pub fn setup_histogram(&self) -> &Histogram {
        &self.setup
    }

    /// The records currently buffered (oldest first).
    pub fn records(&self) -> Vec<TraceRecord> {
        self.ring.records()
    }

    /// Flushes buffered output, if any dump has opened the file.
    pub fn flush(&mut self) -> io::Result<()> {
        match &mut self.out {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }

    fn dump(&mut self, trigger: TraceRecord, latency_ns: u64, threshold_ns: u64) {
        // A full disk must not take the simulation down: I/O errors are
        // swallowed (matching JsonlTracer), the trigger is still counted.
        self.triggers += 1;
        if self.out.is_none() {
            match File::create(&self.path) {
                Ok(f) => self.out = Some(BufWriter::new(f)),
                Err(_) => return,
            }
        }
        let out = self.out.as_mut().expect("opened above");
        let (src, dst) = match trigger.event {
            TraceEvent::ConnEstablished { src, dst, .. } => (src, dst),
            _ => unreachable!("only establishes trigger dumps"),
        };
        let marker = Json::obj([
            ("kind", Json::str("flight-trigger")),
            ("t_ns", trigger.t_ns.into()),
            ("slot", trigger.slot.into()),
            ("src", src.into()),
            ("dst", dst.into()),
            ("setup_latency_ns", latency_ns.into()),
            ("threshold_ns", threshold_ns.into()),
            ("trigger_seq", self.triggers.into()),
            ("events", self.ring.records().len().into()),
        ]);
        let mut lines = 1u64;
        let _ = writeln!(out, "{}", marker.render());
        for rec in self.ring.records() {
            let _ = writeln!(out, "{}", record_json(&rec).render());
            lines += 1;
        }
        self.written += lines;
        // The window is consumed: the next dump starts fresh rather than
        // re-reporting the same events.
        self.ring.clear();
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, rec: TraceRecord) {
        self.ring.record(rec);
        match rec.event {
            TraceEvent::ConnRequested { src, dst } => {
                self.pending.entry((src, dst)).or_insert(rec.t_ns);
            }
            TraceEvent::ConnEstablished { src, dst, .. } => {
                if let Some(t0) = self.pending.remove(&(src, dst)) {
                    let latency = rec.t_ns.saturating_sub(t0);
                    let armed = self.setup.count() >= self.cfg.warmup_samples;
                    let threshold = self
                        .setup
                        .quantile(self.cfg.quantile)
                        .max(self.cfg.min_latency_ns);
                    // Strictly above: a fleet of identical latencies sits
                    // *at* its own quantile and must not fire.
                    if armed && latency > threshold {
                        self.dump(rec, latency, threshold);
                    }
                    self.setup.record(latency);
                }
            }
            _ => {}
        }
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn req(t: u64, src: u32, dst: u32) -> TraceRecord {
        TraceRecord {
            t_ns: t,
            slot: 0,
            event: TraceEvent::ConnRequested { src, dst },
        }
    }

    fn est(t: u64, src: u32, dst: u32) -> TraceRecord {
        TraceRecord {
            t_ns: t,
            slot: 0,
            event: TraceEvent::ConnEstablished {
                src,
                dst,
                slot_idx: 0,
            },
        }
    }

    fn tmpfile(name: &str) -> PathBuf {
        std::env::temp_dir().join(name)
    }

    #[test]
    fn uniform_latencies_never_fire() {
        let path = tmpfile("pms-flight-uniform.jsonl");
        std::fs::remove_file(&path).ok();
        let mut fr = FlightRecorder::new(
            &path,
            FlightConfig {
                warmup_samples: 4,
                ..FlightConfig::default()
            },
        );
        for i in 0..100u64 {
            fr.record(req(i * 1000, (i % 8) as u32, ((i + 1) % 8) as u32));
            fr.record(est(i * 1000 + 80, (i % 8) as u32, ((i + 1) % 8) as u32));
        }
        assert_eq!(fr.triggers(), 0);
        assert!(!path.exists(), "no anomaly, no file");
    }

    #[test]
    fn outlier_setup_latency_dumps_ring() {
        let path = tmpfile("pms-flight-outlier.jsonl");
        std::fs::remove_file(&path).ok();
        let mut fr = FlightRecorder::new(
            &path,
            FlightConfig {
                capacity: 16,
                warmup_samples: 8,
                quantile: 0.9,
                min_latency_ns: 0,
            },
        );
        // 20 fast setups (80 ns), then one pathological 100 µs setup.
        for i in 0..20u64 {
            fr.record(req(i * 1000, 0, 1));
            fr.record(est(i * 1000 + 80, 0, 1));
        }
        fr.record(req(50_000, 2, 3));
        fr.record(est(150_000, 2, 3));
        assert_eq!(fr.triggers(), 1);
        fr.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Marker + up to `capacity` ring records, every line valid JSON.
        assert!(lines.len() > 1 && lines.len() as u64 == fr.written());
        let marker = Json::parse(lines[0]).unwrap();
        assert_eq!(
            marker.get("kind").and_then(Json::as_str),
            Some("flight-trigger")
        );
        assert_eq!(
            marker.get("setup_latency_ns").and_then(Json::as_u64),
            Some(100_000)
        );
        let docs = parse_flight_dump(&text).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(docs.len(), lines.len(), "one document per dump line");
        // The ring was consumed by the dump.
        assert!(fr.records().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_dump_line_is_located_not_fatal() {
        let text = "{\"kind\":\"flight-trigger\"}\n{\"kind\":\"slot-start\"}\n{oops\n";
        let err = parse_flight_dump(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.context, "{oops");
        let msg = err.to_string();
        assert!(msg.contains("line 3") && msg.contains("{oops"), "{msg}");
    }

    #[test]
    fn warmup_suppresses_early_fires() {
        let path = tmpfile("pms-flight-warmup.jsonl");
        std::fs::remove_file(&path).ok();
        let mut fr = FlightRecorder::new(
            &path,
            FlightConfig {
                warmup_samples: 100,
                ..FlightConfig::default()
            },
        );
        fr.record(req(0, 0, 1));
        fr.record(est(10, 0, 1));
        fr.record(req(20, 0, 2));
        fr.record(est(1_000_000, 0, 2)); // huge, but the detector is cold
        assert_eq!(fr.triggers(), 0);
        assert!(!path.exists());
    }
}
