//! Deterministic per-window metrics time-series.
//!
//! A [`SnapshotCollector`] watches the record stream and folds every event
//! into per-window delta counters. Windows are keyed to *simulation time*
//! (`window_ns`, normally a whole number of TDM slots), never wall clock:
//! the same trace always produces the same series, live or replayed from
//! JSONL. When the stream crosses a window boundary the closed window is
//! emitted as a [`TraceEvent::MetricsSnapshot`] record — stamped at the
//! boundary, so it sorts correctly between the two windows' records — and
//! retained in a bounded delta-ring ([`SnapshotCollector::recent`]).
//!
//! All-idle windows are skipped entirely: a gap in `seq` *is* the
//! statement "nothing happened here", which keeps long idle-skipped runs
//! from drowning the ring in zero rows.

use crate::event::{TraceEvent, TraceRecord};
use crate::json::Json;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::hash::{BuildHasherDefault, Hasher};

/// Packs a (src, dst) pair into the pending-setup map key.
#[inline]
fn pair_key(src: u32, dst: u32) -> u64 {
    (src as u64) << 32 | dst as u64
}

/// Multiplicative hasher for the packed pair keys. The pending-setup map
/// sits on the per-record fold path, where SipHash is measurable against
/// the trace-overhead gate; Fibonacci multiplicative hashing is plenty
/// for keys that are two small port indices.
#[derive(Debug, Default)]
struct PairHasher(u64);

type BuildPairHasher = BuildHasherDefault<PairHasher>;

impl Hasher for PairHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; this path exists to satisfy the
        // trait.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Multiplicative hashes concentrate entropy in the high bits;
        // HashMap keeps the low ones, so fold them down.
        self.0 ^ (self.0 >> 32)
    }
}

/// Default snapshot cadence in TDM slots (callers multiply by `slot_ns`).
pub const DEFAULT_WINDOW_SLOTS: u64 = 64;

/// Default bounded delta-ring capacity (snapshots retained in memory).
pub const DEFAULT_RING: usize = 4096;

/// Tuning for the [`SnapshotCollector`].
#[derive(Debug, Clone, Copy)]
pub struct SnapshotConfig {
    /// Window length in simulation nanoseconds (must be nonzero).
    /// Keyed to slot windows by convention: `slot_ns * cadence_slots`.
    pub window_ns: u64,
    /// Bounded delta-ring capacity: how many recent snapshots stay
    /// queryable in memory (the full series still lives in the trace).
    pub ring: usize,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            // 64 slots at the paper's 100 ns slot.
            window_ns: DEFAULT_WINDOW_SLOTS * 100,
            ring: DEFAULT_RING,
        }
    }
}

impl SnapshotConfig {
    /// A config windowing every `slots` TDM slots of `slot_ns` each.
    pub fn per_slots(slot_ns: u64, slots: u64) -> Self {
        SnapshotConfig {
            window_ns: slot_ns.max(1) * slots.max(1),
            ring: DEFAULT_RING,
        }
    }
}

/// One closed window: the materialized form of a
/// [`TraceEvent::MetricsSnapshot`] record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Boundary timestamp the snapshot record was stamped with.
    pub t_ns: u64,
    /// TDM slot active at emission.
    pub slot: u32,
    /// Window index: `window_start_ns / window_ns`.
    pub seq: u32,
    /// Messages delivered in the window.
    pub delivered: u32,
    /// Payload bytes delivered in the window.
    pub bytes: u64,
    /// Connections established in the window.
    pub established: u32,
    /// Connections evicted in the window.
    pub evicted: u32,
    /// Scheduler denials in the window.
    pub denied: u32,
    /// Message retries in the window.
    pub retries: u32,
    /// Messages abandoned in the window.
    pub abandoned: u32,
    /// Faults injected in the window.
    pub faults_injected: u32,
    /// Faults cleared in the window.
    pub faults_cleared: u32,
    /// Request→establish setups completed in the window.
    pub setups: u32,
    /// Sum of completed setup latencies.
    pub setup_total_ns: u64,
    /// Worst completed setup latency.
    pub setup_max_ns: u64,
    /// Scheduling passes in the window.
    pub passes: u32,
    /// Admission requests enqueued in the window.
    pub enqueued: u32,
    /// Admission requests granted in the window.
    pub granted: u32,
    /// Admission requests rejected in the window.
    pub rejected: u32,
    /// Admission batch epochs completed in the window.
    pub batches: u32,
}

impl Snapshot {
    /// Whether the window saw no activity at all (skipped, not emitted).
    pub fn is_idle(&self) -> bool {
        self.delivered == 0
            && self.bytes == 0
            && self.established == 0
            && self.evicted == 0
            && self.denied == 0
            && self.retries == 0
            && self.abandoned == 0
            && self.faults_injected == 0
            && self.faults_cleared == 0
            && self.setups == 0
            && self.passes == 0
            && self.enqueued == 0
            && self.granted == 0
            && self.rejected == 0
            && self.batches == 0
    }

    /// Mean completed setup latency in the window, or 0 with no setups.
    pub fn setup_mean_ns(&self) -> u64 {
        if self.setups == 0 {
            0
        } else {
            self.setup_total_ns / self.setups as u64
        }
    }

    /// The snapshot as a trace event (inverse of [`Snapshot::from_record`]).
    pub fn to_event(&self) -> TraceEvent {
        TraceEvent::MetricsSnapshot {
            seq: self.seq,
            delivered: self.delivered,
            bytes: self.bytes,
            established: self.established,
            evicted: self.evicted,
            denied: self.denied,
            retries: self.retries,
            abandoned: self.abandoned,
            faults_injected: self.faults_injected,
            faults_cleared: self.faults_cleared,
            setups: self.setups,
            setup_total_ns: self.setup_total_ns,
            setup_max_ns: self.setup_max_ns,
            passes: self.passes,
            enqueued: self.enqueued,
            granted: self.granted,
            rejected: self.rejected,
            batches: self.batches,
        }
    }

    /// The snapshot as a stamped trace record.
    pub fn to_record(&self) -> TraceRecord {
        TraceRecord {
            t_ns: self.t_ns,
            slot: self.slot,
            event: self.to_event(),
        }
    }

    /// Rebuilds a snapshot from a `MetricsSnapshot` record (replay path);
    /// `None` for any other event kind.
    pub fn from_record(rec: &TraceRecord) -> Option<Snapshot> {
        match rec.event {
            TraceEvent::MetricsSnapshot {
                seq,
                delivered,
                bytes,
                established,
                evicted,
                denied,
                retries,
                abandoned,
                faults_injected,
                faults_cleared,
                setups,
                setup_total_ns,
                setup_max_ns,
                passes,
                enqueued,
                granted,
                rejected,
                batches,
            } => Some(Snapshot {
                t_ns: rec.t_ns,
                slot: rec.slot,
                seq,
                delivered,
                bytes,
                established,
                evicted,
                denied,
                retries,
                abandoned,
                faults_injected,
                faults_cleared,
                setups,
                setup_total_ns,
                setup_max_ns,
                passes,
                enqueued,
                granted,
                rejected,
                batches,
            }),
            _ => None,
        }
    }

    /// JSON object form (used by `/timeseries` and the analyze report).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seq", self.seq.into()),
            ("t_ns", self.t_ns.into()),
            ("slot", self.slot.into()),
            ("delivered", self.delivered.into()),
            ("bytes", self.bytes.into()),
            ("established", self.established.into()),
            ("evicted", self.evicted.into()),
            ("denied", self.denied.into()),
            ("retries", self.retries.into()),
            ("abandoned", self.abandoned.into()),
            ("faults_injected", self.faults_injected.into()),
            ("faults_cleared", self.faults_cleared.into()),
            ("setups", self.setups.into()),
            ("setup_total_ns", self.setup_total_ns.into()),
            ("setup_max_ns", self.setup_max_ns.into()),
            ("passes", self.passes.into()),
            ("enqueued", self.enqueued.into()),
            ("granted", self.granted.into()),
            ("rejected", self.rejected.into()),
            ("batches", self.batches.into()),
        ])
    }

    /// CSV header matching [`Snapshot::to_csv_row`].
    pub const CSV_HEADER: &'static str = "seq,t_ns,slot,delivered,bytes,established,evicted,\
denied,retries,abandoned,faults_injected,faults_cleared,setups,setup_total_ns,setup_max_ns,passes,\
enqueued,granted,rejected,batches";

    /// One CSV row (no trailing newline), column order per [`CSV_HEADER`].
    ///
    /// [`CSV_HEADER`]: Snapshot::CSV_HEADER
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.seq,
            self.t_ns,
            self.slot,
            self.delivered,
            self.bytes,
            self.established,
            self.evicted,
            self.denied,
            self.retries,
            self.abandoned,
            self.faults_injected,
            self.faults_cleared,
            self.setups,
            self.setup_total_ns,
            self.setup_max_ns,
            self.passes,
            self.enqueued,
            self.granted,
            self.rejected,
            self.batches
        )
    }
}

/// Folds a record stream into per-window [`Snapshot`]s.
///
/// Deterministic by construction: state depends only on the records seen
/// (and their order), never on wall clock. Synthetic records
/// (`MetricsSnapshot`, `AlertRaised`, `AlertCleared`) flowing back through
/// are ignored, so replaying an already-snapshotted trace through a fresh
/// collector cannot double-count.
#[derive(Debug, Clone)]
pub struct SnapshotCollector {
    cfg: SnapshotConfig,
    /// Current open window index, or `None` before the first record.
    cur: Option<u64>,
    /// First timestamp past the open window — cached so the per-record
    /// hot path is one compare, not a division.
    next_boundary_ns: u64,
    /// Accumulating deltas for the open window.
    acc: Snapshot,
    /// Last slot observed (stamped onto boundary snapshots).
    last_slot: u32,
    /// Outstanding `ConnRequested` times per (src, dst) — setups attribute
    /// to the window their *establish* lands in.
    pending: HashMap<u64, u64, BuildPairHasher>,
    /// Bounded delta-ring of the most recent emitted snapshots.
    recent: VecDeque<Snapshot>,
    emitted: u64,
    skipped_idle: u64,
    sealed: bool,
}

impl SnapshotCollector {
    /// A collector with the given windowing config.
    pub fn new(cfg: SnapshotConfig) -> Self {
        assert!(cfg.window_ns > 0, "snapshot window must be nonzero");
        assert!(cfg.ring > 0, "snapshot ring must be nonzero");
        SnapshotCollector {
            cfg,
            cur: None,
            next_boundary_ns: 0,
            acc: Snapshot::default(),
            last_slot: 0,
            pending: HashMap::default(),
            recent: VecDeque::new(),
            emitted: 0,
            skipped_idle: 0,
            sealed: false,
        }
    }

    /// Window length in simulation nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.cfg.window_ns
    }

    /// Snapshots emitted so far (idle windows excluded).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Idle windows skipped so far.
    pub fn skipped_idle(&self) -> u64 {
        self.skipped_idle
    }

    /// The bounded delta-ring: most recent emitted snapshots, oldest
    /// first.
    pub fn recent(&self) -> impl Iterator<Item = &Snapshot> {
        self.recent.iter()
    }

    /// Observes one record. Any window closed by this record's timestamp
    /// is pushed to `out` (stamped at its boundary) *before* the record
    /// itself should be forwarded, preserving `t_ns` order.
    #[inline]
    pub fn observe(&mut self, rec: &TraceRecord, out: &mut Vec<Snapshot>) {
        if self.crosses_boundary(rec.t_ns) {
            self.roll_window(rec.t_ns, out);
        }
        self.fold_parts(rec.t_ns, rec.slot, &rec.event);
    }

    /// Whether this timestamp closes the open window (or opens the first
    /// one) — the pipeline's one-compare hot-path guard.
    #[inline]
    pub(crate) fn crosses_boundary(&self, t_ns: u64) -> bool {
        t_ns >= self.next_boundary_ns
    }

    /// Folds one record (given as its parts, so callers need not build a
    /// `TraceRecord`) into the open window without any boundary check —
    /// the caller has already handled
    /// [`crosses_boundary`](Self::crosses_boundary).
    #[inline]
    pub(crate) fn fold_parts(&mut self, t_ns: u64, slot: u32, event: &TraceEvent) {
        debug_assert!(!self.sealed, "observe after seal");
        self.last_slot = slot;
        self.fold(t_ns, event);
    }

    /// Opens the window containing `t_ns`, closing the previous one (if
    /// any) at its boundary first. Runs once per window, not per record
    /// — the only place the window division happens.
    #[cold]
    pub(crate) fn roll_window(&mut self, t_ns: u64, out: &mut Vec<Snapshot>) {
        let w = t_ns / self.cfg.window_ns;
        if let Some(cur) = self.cur {
            // Close the open window; idle gaps between it and w are
            // skipped wholesale, not materialized.
            self.close_window((cur + 1) * self.cfg.window_ns, out);
        }
        self.cur = Some(w);
        self.acc.seq = w as u32;
        self.next_boundary_ns = (w + 1) * self.cfg.window_ns;
    }

    /// Flushes the final partial window at end of run. Simulators call
    /// this (via `Tracer::seal`) exactly once, after their last event.
    pub fn seal(&mut self, t_ns: u64, slot: u32, out: &mut Vec<Snapshot>) {
        if self.sealed {
            return;
        }
        self.sealed = true;
        self.last_slot = slot;
        if self.cur.is_some() {
            self.close_window(t_ns, out);
        }
    }

    fn close_window(&mut self, boundary_ns: u64, out: &mut Vec<Snapshot>) {
        let mut snap = std::mem::take(&mut self.acc);
        snap.t_ns = boundary_ns;
        snap.slot = self.last_slot;
        if snap.is_idle() {
            self.skipped_idle += 1;
            return;
        }
        self.emitted += 1;
        if self.recent.len() == self.cfg.ring {
            self.recent.pop_front();
        }
        self.recent.push_back(snap);
        out.push(snap);
    }

    #[inline]
    fn fold(&mut self, t_ns: u64, event: &TraceEvent) {
        match *event {
            TraceEvent::MsgDelivered { bytes, .. } => {
                self.acc.delivered += 1;
                self.acc.bytes += bytes as u64;
            }
            TraceEvent::ConnRequested { src, dst } => {
                self.pending.entry(pair_key(src, dst)).or_insert(t_ns);
            }
            TraceEvent::ConnEstablished { src, dst, .. } => {
                self.acc.established += 1;
                if let Some(t0) = self.pending.remove(&pair_key(src, dst)) {
                    let latency = t_ns.saturating_sub(t0);
                    self.acc.setups += 1;
                    self.acc.setup_total_ns += latency;
                    self.acc.setup_max_ns = self.acc.setup_max_ns.max(latency);
                }
            }
            TraceEvent::ConnEvicted { .. } => self.acc.evicted += 1,
            TraceEvent::SchedPass { denied, .. } => {
                self.acc.passes += 1;
                self.acc.denied += denied;
            }
            TraceEvent::MsgRetried { .. } => self.acc.retries += 1,
            TraceEvent::MsgAbandoned { .. } => self.acc.abandoned += 1,
            TraceEvent::FaultInjected { .. } => self.acc.faults_injected += 1,
            TraceEvent::FaultCleared { .. } => self.acc.faults_cleared += 1,
            TraceEvent::RequestEnqueued { .. } => self.acc.enqueued += 1,
            TraceEvent::RequestGranted { .. } => self.acc.granted += 1,
            TraceEvent::RequestRejected { .. } => self.acc.rejected += 1,
            TraceEvent::BatchAdmitted { .. } => self.acc.batches += 1,
            _ => {}
        }
    }
}

/// Reconstructs the full snapshot series from a record stream (replay,
/// telemetry `/timeseries`, CSV export). Pure: series(trace) is the same
/// bytes live and replayed.
pub fn series_from_records(records: &[TraceRecord]) -> Vec<Snapshot> {
    records.iter().filter_map(Snapshot::from_record).collect()
}

/// Renders a snapshot series as CSV text (header + one row per window).
pub fn series_to_csv(series: &[Snapshot]) -> String {
    let mut out = String::with_capacity(64 * (series.len() + 1));
    out.push_str(Snapshot::CSV_HEADER);
    out.push('\n');
    for s in series {
        out.push_str(&s.to_csv_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivered(t: u64, bytes: u32) -> TraceRecord {
        TraceRecord {
            t_ns: t,
            slot: (t / 100) as u32,
            event: TraceEvent::MsgDelivered {
                src: 0,
                dst: 1,
                bytes,
                msg: 0,
                latency_ns: 10,
            },
        }
    }

    #[test]
    fn windows_key_to_sim_time_and_skip_idle() {
        let mut c = SnapshotCollector::new(SnapshotConfig {
            window_ns: 1000,
            ring: 8,
        });
        let mut out = Vec::new();
        c.observe(&delivered(100, 64), &mut out);
        c.observe(&delivered(900, 64), &mut out);
        assert!(out.is_empty(), "window 0 still open");
        // Jump over windows 1..4 (idle) straight into window 5.
        c.observe(&delivered(5100, 32), &mut out);
        assert_eq!(out.len(), 1, "only window 0 closed; idle gap skipped");
        assert_eq!(out[0].seq, 0);
        assert_eq!(out[0].t_ns, 1000, "stamped at the boundary");
        assert_eq!(out[0].delivered, 2);
        assert_eq!(out[0].bytes, 128);
        let mut sealed = Vec::new();
        c.seal(5200, 52, &mut sealed);
        assert_eq!(sealed.len(), 1, "seal flushes the partial window");
        assert_eq!(sealed[0].seq, 5);
        assert_eq!(sealed[0].delivered, 1);
        assert_eq!(c.emitted(), 2);
        assert_eq!(c.skipped_idle(), 0, "idle gap windows never materialize");
    }

    #[test]
    fn setup_latency_pairs_request_to_establish() {
        let mut c = SnapshotCollector::new(SnapshotConfig {
            window_ns: 1000,
            ring: 8,
        });
        let mut out = Vec::new();
        c.observe(
            &TraceRecord {
                t_ns: 10,
                slot: 0,
                event: TraceEvent::ConnRequested { src: 2, dst: 3 },
            },
            &mut out,
        );
        c.observe(
            &TraceRecord {
                t_ns: 250,
                slot: 0,
                event: TraceEvent::ConnEstablished {
                    src: 2,
                    dst: 3,
                    slot_idx: 0,
                },
            },
            &mut out,
        );
        let mut sealed = Vec::new();
        c.seal(300, 0, &mut sealed);
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].setups, 1);
        assert_eq!(sealed[0].setup_total_ns, 240);
        assert_eq!(sealed[0].setup_max_ns, 240);
        assert_eq!(sealed[0].setup_mean_ns(), 240);
    }

    #[test]
    fn admission_events_fold_into_windows() {
        use crate::event::RejectCause;
        let mut c = SnapshotCollector::new(SnapshotConfig {
            window_ns: 1000,
            ring: 8,
        });
        let mut out = Vec::new();
        let rec = |t_ns, event| TraceRecord {
            t_ns,
            slot: 0,
            event,
        };
        c.observe(
            &rec(
                10,
                TraceEvent::RequestEnqueued {
                    req: 0,
                    tenant: 1,
                    src: 0,
                    dst: 1,
                },
            ),
            &mut out,
        );
        c.observe(
            &rec(
                20,
                TraceEvent::RequestRejected {
                    req: 1,
                    tenant: 1,
                    src: 0,
                    dst: 2,
                    cause: RejectCause::QueueFull,
                },
            ),
            &mut out,
        );
        c.observe(
            &rec(
                100,
                TraceEvent::RequestGranted {
                    req: 0,
                    tenant: 1,
                    src: 0,
                    dst: 1,
                    wait_ns: 90,
                },
            ),
            &mut out,
        );
        c.observe(
            &rec(
                100,
                TraceEvent::BatchAdmitted {
                    batch: 0,
                    capacity: 4,
                    selected: 1,
                    granted: 1,
                    denied: 0,
                    pending: 0,
                },
            ),
            &mut out,
        );
        let mut sealed = Vec::new();
        c.seal(200, 0, &mut sealed);
        assert_eq!(
            sealed.len(),
            1,
            "admission activity makes a window non-idle"
        );
        assert_eq!(sealed[0].enqueued, 1);
        assert_eq!(sealed[0].granted, 1);
        assert_eq!(sealed[0].rejected, 1);
        assert_eq!(sealed[0].batches, 1);
    }

    #[test]
    fn ring_is_bounded() {
        let mut c = SnapshotCollector::new(SnapshotConfig {
            window_ns: 100,
            ring: 3,
        });
        let mut out = Vec::new();
        for i in 0..10u64 {
            c.observe(&delivered(i * 100 + 50, 8), &mut out);
        }
        c.seal(1000, 0, &mut out);
        assert_eq!(out.len(), 10, "every non-idle window emitted");
        let held: Vec<u32> = c.recent().map(|s| s.seq).collect();
        assert_eq!(held, vec![7, 8, 9], "ring keeps the most recent 3");
    }

    #[test]
    fn snapshot_record_roundtrip() {
        let snap = Snapshot {
            t_ns: 6400,
            slot: 63,
            seq: 7,
            delivered: 3,
            bytes: 192,
            established: 2,
            evicted: 1,
            denied: 4,
            retries: 1,
            abandoned: 0,
            faults_injected: 1,
            faults_cleared: 1,
            setups: 2,
            setup_total_ns: 500,
            setup_max_ns: 400,
            passes: 12,
            enqueued: 5,
            granted: 4,
            rejected: 1,
            batches: 2,
        };
        assert_eq!(Snapshot::from_record(&snap.to_record()), Some(snap));
        assert_eq!(
            Snapshot::from_record(&delivered(5, 8)),
            None,
            "non-snapshot records are ignored"
        );
    }

    #[test]
    fn series_csv_has_header_and_rows() {
        let series = vec![Snapshot {
            seq: 1,
            t_ns: 2000,
            delivered: 5,
            bytes: 320,
            ..Snapshot::default()
        }];
        let csv = series_to_csv(&series);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(Snapshot::CSV_HEADER));
        let row = lines.next().unwrap();
        assert!(row.starts_with("1,2000,0,5,320,"), "{row}");
        assert_eq!(
            row.split(',').count(),
            Snapshot::CSV_HEADER.split(',').count()
        );
    }

    #[test]
    fn collector_ignores_synthetic_records() {
        let mut c = SnapshotCollector::new(SnapshotConfig {
            window_ns: 1000,
            ring: 8,
        });
        let mut out = Vec::new();
        let snap = Snapshot {
            t_ns: 100,
            seq: 0,
            delivered: 50,
            bytes: 1000,
            ..Snapshot::default()
        };
        c.observe(&snap.to_record(), &mut out);
        c.observe(
            &TraceRecord {
                t_ns: 200,
                slot: 0,
                event: TraceEvent::AlertRaised {
                    rule: 0,
                    seq: 0,
                    value: 1,
                    threshold: 0,
                },
            },
            &mut out,
        );
        let mut sealed = Vec::new();
        c.seal(300, 0, &mut sealed);
        assert!(
            sealed.is_empty() && out.is_empty(),
            "synthetic records must not create activity"
        );
    }
}
