//! Deterministic merging of shard-tagged streams.
//!
//! The parallel simulation engine (see DESIGN.md §"Parallel execution
//! model") lets worker shards produce buffered streams — engine effects,
//! lookup scans, trace records — concurrently, then merges them on the
//! coordinator so the result is byte-identical to a sequential run. The
//! merge contract is a single canonical order:
//!
//! > **(key, shard, seq)** — primary sort key (usually the event's
//! > timestamp), then the shard index, then the record's position within
//! > its shard's buffer.
//!
//! Because each shard's buffer preserves its own emission order (`seq`)
//! and shards partition the port space in index order, this order equals
//! what a sequential sweep over the same ports would have produced:
//! a stable sort of the shard-order concatenation.

use crate::event::TraceRecord;

/// Merges per-shard buffers into canonical `(key, shard, seq)` order.
///
/// `shards[s]` is shard `s`'s buffer in emission order; `key` extracts
/// the primary sort key. The merge is a stable sort of the shard-order
/// concatenation, so records with equal keys keep shard-index order, and
/// records within one shard keep emission order — independent of how many
/// threads produced the buffers.
pub fn merge_by_key<T, K: Ord>(shards: Vec<Vec<T>>, key: impl Fn(&T) -> K) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(shards.iter().map(Vec::len).sum());
    for shard in shards {
        out.extend(shard);
    }
    out.sort_by_key(key);
    out
}

/// [`merge_by_key`] specialized to trace records, keyed by timestamp —
/// the canonical single-logical-tracer merge for shard-tagged sinks.
pub fn merge_records(shards: Vec<Vec<TraceRecord>>) -> Vec<TraceRecord> {
    merge_by_key(shards, |r| r.t_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn rec(t_ns: u64, src: u32) -> TraceRecord {
        TraceRecord {
            t_ns,
            slot: 0,
            event: TraceEvent::ConnRequested { src, dst: 0 },
        }
    }

    #[test]
    fn merge_orders_by_key_then_shard_then_seq() {
        let shards = vec![
            vec![rec(10, 0), rec(10, 1), rec(30, 2)],
            vec![rec(10, 3), rec(20, 4)],
            vec![rec(5, 5)],
        ];
        let merged = merge_records(shards);
        let srcs: Vec<u32> = merged
            .iter()
            .map(|r| match r.event {
                TraceEvent::ConnRequested { src, .. } => src,
                _ => unreachable!(),
            })
            .collect();
        // t=5 first; the three t=10 records keep (shard, seq) order;
        // then t=20, t=30.
        assert_eq!(srcs, vec![5, 0, 1, 3, 4, 2]);
    }

    #[test]
    fn merge_equals_stable_sort_of_concat() {
        // The documented equivalence, checked explicitly.
        let shards = vec![
            vec![(3u64, 'a'), (1, 'b'), (1, 'c')],
            vec![(1, 'd'), (2, 'e')],
        ];
        let merged = merge_by_key(shards.clone(), |&(k, _)| k);
        let mut concat: Vec<(u64, char)> = shards.into_iter().flatten().collect();
        concat.sort_by_key(|&(k, _)| k);
        assert_eq!(merged, concat);
    }

    #[test]
    fn empty_and_single_shard_are_identity_sorts() {
        assert!(merge_records(vec![]).is_empty());
        let one = vec![rec(1, 0), rec(2, 1)];
        let merged = merge_records(vec![one.clone()]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].t_ns, one[0].t_ns);
    }
}
