//! Declarative alerting over the snapshot time-series.
//!
//! A rules file is a line-oriented `key=value` script (same shape and
//! error discipline as `pms-faults` plan files: blank lines and `#`
//! comments skipped, errors carry 1-based line numbers and the verbatim
//! line). Three rule kinds:
//!
//! ```text
//! # fire when a per-window metric crosses a level
//! threshold name=retry-storm metric=retries op=ge value=5 for=2 clear=1 clear-for=2 cooldown=4
//! # fire on the signed delta between consecutive emitted windows
//! rate name=delivery-drop metric=delivered op=lt value=-10
//! # fire when a metric departs its EWMA by more than z sigmas
//! anomaly name=setup-spike metric=setup-max-ns z=3 alpha=0.25 warmup=8
//! ```
//!
//! Hysteresis: `for=N` consecutive breaching windows raise, `clear-for=N`
//! consecutive non-breaching windows clear, `clear=V` gives threshold
//! rules a separate clear level, and `cooldown=N` suppresses re-raising
//! for N evaluated windows after a clear.
//!
//! The engine is evaluated *online* against each emitted
//! [`Snapshot`](crate::timeseries::Snapshot) and is a pure function of
//! the snapshot sequence: the same trace plus the same rules always
//! yields the same `AlertRaised`/`AlertCleared` stream, live or replayed
//! ([`replay_alerts`]). Events carry rule *indices*; names stay in the
//! rules file. Rate deltas are encoded two's-complement into the event's
//! `u64` `value`/`threshold` fields.
//!
//! Only *emitted* windows are evaluated — all-idle windows are skipped by
//! the collector, so a rule cannot clear during a stretch where nothing
//! happened at all. This is deliberate: an idle fabric has no new
//! evidence either way.

use crate::event::{TraceEvent, TraceRecord};
use crate::timeseries::Snapshot;
use std::fmt;

/// A per-window metric an alert rule can address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Messages delivered in the window.
    Delivered,
    /// Payload bytes delivered in the window.
    Bytes,
    /// Connections established in the window.
    Established,
    /// Connections evicted in the window.
    Evicted,
    /// Scheduler denials in the window.
    Denied,
    /// Message retries in the window.
    Retries,
    /// Messages abandoned in the window.
    Abandoned,
    /// Faults injected in the window.
    FaultsInjected,
    /// Faults cleared in the window.
    FaultsCleared,
    /// Setups completed in the window.
    Setups,
    /// Worst completed setup latency in the window.
    SetupMaxNs,
    /// Mean completed setup latency in the window.
    SetupMeanNs,
    /// Scheduling passes in the window.
    Passes,
    /// Admission requests enqueued in the window.
    Enqueued,
    /// Admission requests granted in the window.
    Granted,
    /// Admission requests rejected in the window.
    Rejected,
    /// Admission batch epochs completed in the window.
    Batches,
}

impl Metric {
    /// Stable kebab-case label used by rules files.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Delivered => "delivered",
            Metric::Bytes => "bytes",
            Metric::Established => "established",
            Metric::Evicted => "evicted",
            Metric::Denied => "denied",
            Metric::Retries => "retries",
            Metric::Abandoned => "abandoned",
            Metric::FaultsInjected => "faults-injected",
            Metric::FaultsCleared => "faults-cleared",
            Metric::Setups => "setups",
            Metric::SetupMaxNs => "setup-max-ns",
            Metric::SetupMeanNs => "setup-mean-ns",
            Metric::Passes => "passes",
            Metric::Enqueued => "enqueued",
            Metric::Granted => "granted",
            Metric::Rejected => "rejected",
            Metric::Batches => "batches",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(label: &str) -> Option<Metric> {
        Metric::ALL.into_iter().find(|m| m.label() == label)
    }

    /// All metrics, in snapshot-field order.
    pub const ALL: [Metric; 17] = [
        Metric::Delivered,
        Metric::Bytes,
        Metric::Established,
        Metric::Evicted,
        Metric::Denied,
        Metric::Retries,
        Metric::Abandoned,
        Metric::FaultsInjected,
        Metric::FaultsCleared,
        Metric::Setups,
        Metric::SetupMaxNs,
        Metric::SetupMeanNs,
        Metric::Passes,
        Metric::Enqueued,
        Metric::Granted,
        Metric::Rejected,
        Metric::Batches,
    ];

    /// Reads this metric out of a snapshot.
    pub fn value(self, snap: &Snapshot) -> u64 {
        match self {
            Metric::Delivered => snap.delivered as u64,
            Metric::Bytes => snap.bytes,
            Metric::Established => snap.established as u64,
            Metric::Evicted => snap.evicted as u64,
            Metric::Denied => snap.denied as u64,
            Metric::Retries => snap.retries as u64,
            Metric::Abandoned => snap.abandoned as u64,
            Metric::FaultsInjected => snap.faults_injected as u64,
            Metric::FaultsCleared => snap.faults_cleared as u64,
            Metric::Setups => snap.setups as u64,
            Metric::SetupMaxNs => snap.setup_max_ns,
            Metric::SetupMeanNs => snap.setup_mean_ns(),
            Metric::Passes => snap.passes as u64,
            Metric::Enqueued => snap.enqueued as u64,
            Metric::Granted => snap.granted as u64,
            Metric::Rejected => snap.rejected as u64,
            Metric::Batches => snap.batches as u64,
        }
    }
}

/// Comparison operator for threshold and rate rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Strictly greater.
    Gt,
    /// Strictly less.
    Lt,
    /// Greater or equal.
    Ge,
    /// Less or equal.
    Le,
}

impl Op {
    /// Stable label used by rules files.
    pub fn label(self) -> &'static str {
        match self {
            Op::Gt => "gt",
            Op::Lt => "lt",
            Op::Ge => "ge",
            Op::Le => "le",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(label: &str) -> Option<Op> {
        match label {
            "gt" => Some(Op::Gt),
            "lt" => Some(Op::Lt),
            "ge" => Some(Op::Ge),
            "le" => Some(Op::Le),
            _ => None,
        }
    }

    fn cmp_u64(self, a: u64, b: u64) -> bool {
        match self {
            Op::Gt => a > b,
            Op::Lt => a < b,
            Op::Ge => a >= b,
            Op::Le => a <= b,
        }
    }

    fn cmp_i64(self, a: i64, b: i64) -> bool {
        match self {
            Op::Gt => a > b,
            Op::Lt => a < b,
            Op::Ge => a >= b,
            Op::Le => a <= b,
        }
    }
}

/// What makes one rule breach.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// Metric level crosses `value` (clears against `clear_value` when
    /// given, for hysteresis on the level itself).
    Threshold {
        /// Raise level.
        value: u64,
        /// Separate clear level, defaulting to the raise level.
        clear_value: Option<u64>,
    },
    /// Signed delta between consecutive *emitted* windows crosses `value`.
    Rate {
        /// Raise delta (may be negative).
        value: i64,
    },
    /// Metric sits more than `z` sigmas above its EWMA mean.
    Anomaly {
        /// Sigma multiplier.
        z: f64,
        /// EWMA smoothing factor in `(0, 1]`.
        alpha: f64,
        /// Windows observed before the detector may fire.
        warmup: u32,
    },
}

impl RuleKind {
    /// Stable directive name for this kind.
    pub fn directive(&self) -> &'static str {
        match self {
            RuleKind::Threshold { .. } => "threshold",
            RuleKind::Rate { .. } => "rate",
            RuleKind::Anomaly { .. } => "anomaly",
        }
    }
}

/// One parsed alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name (unique within a file; lives only here, never in events).
    pub name: String,
    /// Watched metric.
    pub metric: Metric,
    /// Comparison for threshold/rate rules (`Op::Gt` for anomaly, unused).
    pub op: Op,
    /// Breach definition.
    pub kind: RuleKind,
    /// Consecutive breaching windows required to raise.
    pub raise_for: u32,
    /// Consecutive non-breaching windows required to clear.
    pub clear_for: u32,
    /// Evaluated windows after a clear during which re-raising is
    /// suppressed.
    pub cooldown: u32,
}

/// A parsed rules file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AlertRules {
    /// Rules in file order; [`TraceEvent::AlertRaised::rule`] indexes this.
    pub rules: Vec<AlertRule>,
}

/// A malformed rules line: which line (1-based), what it contained, and
/// what was wrong. Mirrors `pms-faults`'s `PlanParseError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RulesParseError {
    /// 1-based line number.
    pub line: usize,
    /// The offending line, verbatim (trimmed).
    pub context: String,
    /// What was wrong with it.
    pub msg: String,
}

impl fmt::Display for RulesParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alert rules line {}: {} in {:?}",
            self.line, self.msg, self.context
        )
    }
}

impl std::error::Error for RulesParseError {}

/// `key=value` fields of one rules line.
struct Fields<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn parse(words: impl Iterator<Item = &'a str>) -> Result<Fields<'a>, String> {
        let mut pairs = Vec::new();
        for w in words {
            let (k, v) = w
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got `{w}`"))?;
            pairs.push((k, v));
        }
        Ok(Fields { pairs })
    }

    fn find(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn get(&self, key: &str) -> Result<&'a str, String> {
        self.find(key).ok_or_else(|| format!("missing {key}="))
    }

    fn get_u64(&self, key: &str) -> Result<u64, String> {
        let v = self.get(key)?;
        v.parse::<u64>()
            .map_err(|_| format!("{key}={v} is not a non-negative integer"))
    }

    fn get_i64(&self, key: &str) -> Result<i64, String> {
        let v = self.get(key)?;
        v.parse::<i64>()
            .map_err(|_| format!("{key}={v} is not an integer"))
    }

    fn get_f64(&self, key: &str) -> Result<f64, String> {
        let v = self.get(key)?;
        v.parse::<f64>()
            .map_err(|_| format!("{key}={v} is not a number"))
    }

    fn opt_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.find(key) {
            Some(_) => self.get_u64(key),
            None => Ok(default),
        }
    }

    fn opt_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.find(key) {
            Some(_) => self.get_f64(key),
            None => Ok(default),
        }
    }
}

impl AlertRules {
    /// Parses a rules file. Errors carry 1-based line numbers.
    pub fn parse(text: &str) -> Result<AlertRules, RulesParseError> {
        let mut rules = AlertRules::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            rules.parse_line(line).map_err(|msg| RulesParseError {
                line: idx + 1,
                context: line.to_string(),
                msg,
            })?;
        }
        Ok(rules)
    }

    /// The built-in policy `simulate --flight-recorder` uses when no
    /// `--alerts` file is given: dump on setup-latency anomalies and any
    /// message abandonment (the generalization of the old hardcoded p99
    /// trigger).
    pub fn default_flight() -> AlertRules {
        AlertRules::parse(
            "anomaly name=setup-spike metric=setup-max-ns z=3 alpha=0.25 warmup=8 cooldown=4\n\
             threshold name=msg-abandoned metric=abandoned op=ge value=1\n",
        )
        .expect("built-in flight rules parse")
    }

    fn parse_line(&mut self, line: &str) -> Result<(), String> {
        let mut words = line.split_whitespace();
        let directive = words.next().expect("non-empty line");
        let fields = Fields::parse(words)?;
        let name = fields.get("name")?.to_string();
        if self.rules.iter().any(|r| r.name == name) {
            return Err(format!("duplicate rule name `{name}`"));
        }
        let metric_label = fields.get("metric")?;
        let metric = Metric::from_label(metric_label).ok_or_else(|| {
            let known: Vec<&str> = Metric::ALL.into_iter().map(Metric::label).collect();
            format!(
                "unknown metric `{metric_label}` (one of: {})",
                known.join(", ")
            )
        })?;
        let parse_op = || -> Result<Op, String> {
            let label = fields.get("op")?;
            Op::from_label(label)
                .ok_or_else(|| format!("unknown op `{label}` (one of: gt, lt, ge, le)"))
        };
        let (op, kind) = match directive {
            "threshold" => {
                let clear_value = match fields.find("clear") {
                    Some(_) => Some(fields.get_u64("clear")?),
                    None => None,
                };
                (
                    parse_op()?,
                    RuleKind::Threshold {
                        value: fields.get_u64("value")?,
                        clear_value,
                    },
                )
            }
            "rate" => (
                parse_op()?,
                RuleKind::Rate {
                    value: fields.get_i64("value")?,
                },
            ),
            "anomaly" => {
                let z = fields.get_f64("z")?;
                if !z.is_finite() || z <= 0.0 {
                    return Err(format!("z={z} must be a positive number"));
                }
                let alpha = fields.opt_f64("alpha", 0.25)?;
                if !(0.0..=1.0).contains(&alpha) || alpha == 0.0 {
                    return Err(format!("alpha={alpha} must be in (0, 1]"));
                }
                (
                    Op::Gt,
                    RuleKind::Anomaly {
                        z,
                        alpha,
                        warmup: fields.opt_u64("warmup", 8)? as u32,
                    },
                )
            }
            other => {
                return Err(format!(
                    "unknown directive `{other}` (one of: threshold, rate, anomaly)"
                ))
            }
        };
        let raise_for = fields.opt_u64("for", 1)? as u32;
        let clear_for = fields.opt_u64("clear-for", 1)? as u32;
        if raise_for == 0 || clear_for == 0 {
            return Err("for= and clear-for= must be at least 1".to_string());
        }
        self.rules.push(AlertRule {
            name,
            metric,
            op,
            kind,
            raise_for,
            clear_for,
            cooldown: fields.opt_u64("cooldown", 0)? as u32,
        });
        Ok(())
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the file defined no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Per-rule evaluation state.
#[derive(Debug, Clone, Default)]
struct RuleState {
    active: bool,
    breach_streak: u32,
    ok_streak: u32,
    cooldown_left: u32,
    /// Previous emitted-window value (rate rules).
    prev: Option<u64>,
    /// EWMA mean / variance and windows seen (anomaly rules).
    ewma_mean: f64,
    ewma_var: f64,
    seen: u32,
}

/// Evaluates [`AlertRules`] online against emitted snapshots, appending
/// `AlertRaised`/`AlertCleared` records (stamped at the snapshot's time
/// and slot) to the output stream.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    rules: AlertRules,
    state: Vec<RuleState>,
    raised: u64,
    cleared: u64,
}

impl AlertEngine {
    /// An engine for the given rules, all quiet.
    pub fn new(rules: AlertRules) -> Self {
        let state = vec![RuleState::default(); rules.rules.len()];
        AlertEngine {
            rules,
            state,
            raised: 0,
            cleared: 0,
        }
    }

    /// The rules being evaluated.
    pub fn rules(&self) -> &AlertRules {
        &self.rules
    }

    /// Total raises so far.
    pub fn raised(&self) -> u64 {
        self.raised
    }

    /// Total clears so far.
    pub fn cleared(&self) -> u64 {
        self.cleared
    }

    /// Indices of currently-active rules, ascending.
    pub fn active_rules(&self) -> Vec<usize> {
        self.state
            .iter()
            .enumerate()
            .filter(|(_, s)| s.active)
            .map(|(i, _)| i)
            .collect()
    }

    /// Evaluates every rule against one emitted snapshot, pushing any
    /// raise/clear records onto `out` in rule order.
    pub fn on_snapshot(&mut self, snap: &Snapshot, out: &mut Vec<TraceRecord>) {
        for i in 0..self.rules.rules.len() {
            let rule = &self.rules.rules[i];
            let x = rule.metric.value(snap);
            let st = &mut self.state[i];
            // What counts as "breaching" this window, plus the observed
            // value and threshold an eventual raise would report.
            let (breach, observed, threshold) = match &rule.kind {
                RuleKind::Threshold { value, clear_value } => {
                    let level = if st.active {
                        clear_value.unwrap_or(*value)
                    } else {
                        *value
                    };
                    (rule.op.cmp_u64(x, level), x, level)
                }
                RuleKind::Rate { value } => {
                    let prev = st.prev.replace(x);
                    match prev {
                        None => (false, 0, *value as u64),
                        Some(p) => {
                            let delta = x as i64 - p as i64;
                            (rule.op.cmp_i64(delta, *value), delta as u64, *value as u64)
                        }
                    }
                }
                RuleKind::Anomaly { z, alpha, warmup } => {
                    let sigma = st.ewma_var.max(0.0).sqrt();
                    let bound = st.ewma_mean + z * sigma;
                    let armed = st.seen >= *warmup;
                    let breach = armed && (x as f64) > bound;
                    // Update the EWMA after the test (the window under
                    // test must not vouch for itself).
                    let diff = x as f64 - st.ewma_mean;
                    let incr = alpha * diff;
                    st.ewma_mean += incr;
                    st.ewma_var = (1.0 - alpha) * (st.ewma_var + diff * incr);
                    st.seen = st.seen.saturating_add(1);
                    (breach, x, bound.max(0.0).min(u64::MAX as f64) as u64)
                }
            };
            if st.active {
                if breach {
                    st.ok_streak = 0;
                } else {
                    st.ok_streak += 1;
                    if st.ok_streak >= rule.clear_for {
                        st.active = false;
                        st.ok_streak = 0;
                        st.cooldown_left = rule.cooldown;
                        self.cleared += 1;
                        out.push(TraceRecord {
                            t_ns: snap.t_ns,
                            slot: snap.slot,
                            event: TraceEvent::AlertCleared {
                                rule: i as u32,
                                seq: snap.seq,
                            },
                        });
                    }
                }
            } else if st.cooldown_left > 0 {
                // Cooling down: breaches are observed but cannot re-raise.
                st.cooldown_left -= 1;
                st.breach_streak = 0;
            } else if breach {
                st.breach_streak += 1;
                if st.breach_streak >= rule.raise_for {
                    st.active = true;
                    st.breach_streak = 0;
                    self.raised += 1;
                    out.push(TraceRecord {
                        t_ns: snap.t_ns,
                        slot: snap.slot,
                        event: TraceEvent::AlertRaised {
                            rule: i as u32,
                            seq: snap.seq,
                            value: observed,
                            threshold,
                        },
                    });
                }
            } else {
                st.breach_streak = 0;
            }
        }
    }
}

/// Recomputes the alert stream from an already-recorded trace: feeds
/// every `MetricsSnapshot` record through a fresh engine. The result
/// equals the `AlertRaised`/`AlertCleared` records a live pipeline with
/// the same rules emitted — the determinism contract the proptests pin.
pub fn replay_alerts(records: &[TraceRecord], rules: &AlertRules) -> Vec<TraceRecord> {
    let mut engine = AlertEngine::new(rules.clone());
    let mut out = Vec::new();
    for rec in records {
        if let Some(snap) = Snapshot::from_record(rec) {
            engine.on_snapshot(&snap, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(seq: u32, retries: u32) -> Snapshot {
        Snapshot {
            t_ns: (seq as u64 + 1) * 1000,
            slot: seq,
            seq,
            retries,
            delivered: 1,
            ..Snapshot::default()
        }
    }

    fn raises_and_clears(out: &[TraceRecord]) -> (usize, usize) {
        let r = out
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::AlertRaised { .. }))
            .count();
        let c = out
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::AlertCleared { .. }))
            .count();
        (r, c)
    }

    #[test]
    fn parse_accepts_every_directive() {
        let rules = AlertRules::parse(
            "# comment\n\
             \n\
             threshold name=a metric=retries op=ge value=5 for=2 clear=1 clear-for=2 cooldown=4\n\
             rate name=b metric=delivered op=lt value=-10\n\
             anomaly name=c metric=setup-max-ns z=3 alpha=0.5 warmup=4\n",
        )
        .unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules.rules[0].raise_for, 2);
        assert_eq!(rules.rules[0].cooldown, 4);
        assert!(matches!(rules.rules[1].kind, RuleKind::Rate { value: -10 }));
        assert!(matches!(rules.rules[2].kind, RuleKind::Anomaly { .. }));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err =
            AlertRules::parse("# fine\nthreshold name=a metric=bogus op=gt value=1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("unknown metric"), "{}", err.msg);
        let msg = err.to_string();
        assert!(msg.contains("line 2") && msg.contains("bogus"), "{msg}");

        let err = AlertRules::parse("nonsense name=x metric=retries\n").unwrap_err();
        assert!(err.msg.contains("unknown directive"), "{}", err.msg);

        let err = AlertRules::parse(
            "threshold name=x metric=retries op=gt value=1\n\
             threshold name=x metric=denied op=gt value=1\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("duplicate"), "{}", err.msg);
    }

    #[test]
    fn threshold_hysteresis_and_cooldown() {
        let rules = AlertRules::parse(
            "threshold name=r metric=retries op=ge value=5 for=2 clear-for=2 cooldown=2\n",
        )
        .unwrap();
        let mut eng = AlertEngine::new(rules);
        let mut out = Vec::new();
        // One breaching window is not enough (for=2).
        eng.on_snapshot(&snap(0, 9), &mut out);
        assert!(out.is_empty());
        eng.on_snapshot(&snap(1, 9), &mut out);
        assert_eq!(raises_and_clears(&out), (1, 0), "raised on 2nd breach");
        assert_eq!(eng.active_rules(), vec![0]);
        // One quiet window is not enough to clear (clear-for=2).
        eng.on_snapshot(&snap(2, 0), &mut out);
        assert_eq!(raises_and_clears(&out), (1, 0));
        eng.on_snapshot(&snap(3, 0), &mut out);
        assert_eq!(raises_and_clears(&out), (1, 1), "cleared on 2nd quiet");
        // Cooldown: the next two breaching windows cannot re-raise...
        eng.on_snapshot(&snap(4, 9), &mut out);
        eng.on_snapshot(&snap(5, 9), &mut out);
        assert_eq!(raises_and_clears(&out), (1, 1));
        // ...after which two more breaches raise again.
        eng.on_snapshot(&snap(6, 9), &mut out);
        eng.on_snapshot(&snap(7, 9), &mut out);
        assert_eq!(raises_and_clears(&out), (2, 1));
    }

    #[test]
    fn threshold_clear_level_is_separate() {
        // Raise at >=5, clear only once it drops below 2.
        let rules =
            AlertRules::parse("threshold name=r metric=retries op=ge value=5 clear=2\n").unwrap();
        let mut eng = AlertEngine::new(rules);
        let mut out = Vec::new();
        eng.on_snapshot(&snap(0, 6), &mut out);
        assert_eq!(raises_and_clears(&out), (1, 0));
        // 3 is below the raise level but still >= clear level 2: no clear.
        eng.on_snapshot(&snap(1, 3), &mut out);
        assert_eq!(raises_and_clears(&out), (1, 0));
        eng.on_snapshot(&snap(2, 1), &mut out);
        assert_eq!(raises_and_clears(&out), (1, 1));
    }

    #[test]
    fn rate_rule_fires_on_signed_delta() {
        let rules = AlertRules::parse("rate name=d metric=delivered op=le value=-3\n").unwrap();
        let mut eng = AlertEngine::new(rules);
        let mut out = Vec::new();
        let mk = |seq: u32, delivered: u32| Snapshot {
            t_ns: (seq as u64 + 1) * 1000,
            seq,
            delivered,
            ..Snapshot::default()
        };
        eng.on_snapshot(&mk(0, 10), &mut out); // no previous window yet
        eng.on_snapshot(&mk(1, 9), &mut out); // delta -1: fine
        assert!(out.is_empty());
        eng.on_snapshot(&mk(2, 4), &mut out); // delta -5: fires
        assert_eq!(raises_and_clears(&out), (1, 0));
        match out[0].event {
            TraceEvent::AlertRaised {
                value, threshold, ..
            } => {
                assert_eq!(value as i64, -5, "delta is two's-complement encoded");
                assert_eq!(threshold as i64, -3);
            }
            _ => panic!("expected raise"),
        }
    }

    #[test]
    fn anomaly_rule_needs_warmup_then_fires_on_spike() {
        let rules =
            AlertRules::parse("anomaly name=s metric=setup-max-ns z=3 alpha=0.25 warmup=4\n")
                .unwrap();
        let mut eng = AlertEngine::new(rules);
        let mut out = Vec::new();
        let mk = |seq: u32, setup_max: u64| Snapshot {
            t_ns: (seq as u64 + 1) * 1000,
            seq,
            setups: 1,
            setup_total_ns: setup_max,
            setup_max_ns: setup_max,
            ..Snapshot::default()
        };
        // Steady 100 ns setups through warmup and beyond.
        for i in 0..8 {
            eng.on_snapshot(&mk(i, 100), &mut out);
        }
        assert!(out.is_empty(), "steady series never fires");
        eng.on_snapshot(&mk(8, 100_000), &mut out);
        assert_eq!(raises_and_clears(&out), (1, 0), "spike fires");
    }

    #[test]
    fn replay_matches_live_stream() {
        let rules = AlertRules::parse(
            "threshold name=r metric=retries op=ge value=3 for=2 clear-for=2 cooldown=1\n\
             rate name=d metric=delivered op=lt value=0\n",
        )
        .unwrap();
        let pattern = [0u32, 5, 5, 5, 0, 0, 4, 4, 0, 0, 0, 7];
        let snaps: Vec<Snapshot> = pattern
            .iter()
            .enumerate()
            .map(|(i, &r)| Snapshot {
                t_ns: (i as u64 + 1) * 1000,
                seq: i as u32,
                retries: r,
                delivered: 10 - r.min(9),
                ..Snapshot::default()
            })
            .collect();
        // Live: engine fed snapshot by snapshot, records interleaved.
        let mut live_records: Vec<TraceRecord> = Vec::new();
        let mut eng = AlertEngine::new(rules.clone());
        for s in &snaps {
            live_records.push(s.to_record());
            eng.on_snapshot(s, &mut live_records);
        }
        let live_alerts: Vec<TraceRecord> = live_records
            .iter()
            .filter(|r| {
                matches!(
                    r.event,
                    TraceEvent::AlertRaised { .. } | TraceEvent::AlertCleared { .. }
                )
            })
            .copied()
            .collect();
        assert!(!live_alerts.is_empty(), "pattern must exercise the rules");
        assert_eq!(replay_alerts(&live_records, &rules), live_alerts);
    }

    #[test]
    fn default_flight_rules_parse_and_cover_abandonment() {
        let rules = AlertRules::default_flight();
        assert_eq!(rules.len(), 2);
        let mut eng = AlertEngine::new(rules);
        let mut out = Vec::new();
        let s = Snapshot {
            t_ns: 1000,
            seq: 0,
            abandoned: 1,
            ..Snapshot::default()
        };
        eng.on_snapshot(&s, &mut out);
        assert_eq!(raises_and_clears(&out), (1, 0), "abandonment fires");
    }
}
