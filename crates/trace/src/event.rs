//! The event taxonomy: everything the simulators can say about a run.

/// Why a cached connection was evicted from the working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictCause {
    /// A [`TimeoutPredictor`](../pms_predict) decided the connection was
    /// idle too long (§3.2).
    Timeout,
    /// A reference-count predictor's counter crossed its threshold
    /// (§3.2).
    RefCount,
    /// The §3.3 phase detector (or an explicit engine flush) dropped the
    /// whole dynamic working set at a phase boundary.
    PhaseFlush,
    /// The connection is torn down as soon as its message completes
    /// (non-predictive paradigms: circuit switching, `PredictorKind::Drop`).
    Drop,
    /// An injected hardware fault (dead link or stuck SL cell) forcibly
    /// tore the connection down, or a stuck-release cell held it past its
    /// natural release and the fault clearing finally freed it.
    Fault,
}

impl EvictCause {
    /// Stable lower-case label for export.
    pub fn label(self) -> &'static str {
        match self {
            EvictCause::Timeout => "timeout",
            EvictCause::RefCount => "refcount",
            EvictCause::PhaseFlush => "phase-flush",
            EvictCause::Drop => "drop",
            EvictCause::Fault => "fault",
        }
    }

    /// Inverse of [`label`](Self::label), for trace replay.
    pub fn from_label(label: &str) -> Option<EvictCause> {
        match label {
            "timeout" => Some(EvictCause::Timeout),
            "refcount" => Some(EvictCause::RefCount),
            "phase-flush" => Some(EvictCause::PhaseFlush),
            "drop" => Some(EvictCause::Drop),
            "fault" => Some(EvictCause::Fault),
            _ => None,
        }
    }

    /// All causes, in label order (report tables iterate this).
    pub const ALL: [EvictCause; 5] = [
        EvictCause::Drop,
        EvictCause::Fault,
        EvictCause::PhaseFlush,
        EvictCause::RefCount,
        EvictCause::Timeout,
    ];
}

/// The lifecycle phase a `SpanStart`/`SpanEnd` pair describes.
///
/// Message spans form a fixed two-level tree: one [`Msg`](SpanPhase::Msg)
/// root per message whose children [`Arrival`](SpanPhase::Arrival) →
/// [`Admit`](SpanPhase::Admit) → [`Align`](SpanPhase::Align) →
/// [`Transfer`](SpanPhase::Transfer) tile the root exactly (zero-length
/// phases are emitted rather than skipped, so per-phase latencies always
/// sum to the end-to-end latency). [`Route`](SpanPhase::Route) is a
/// zero-length child of `Admit` marking a multistage route admission, and
/// [`Conn`](SpanPhase::Conn) spans are parentless connection lifetimes
/// (establish → evict) covering teardown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanPhase {
    /// Root span: injection to delivery (or abandonment).
    Msg,
    /// Injection until the request is visible to the arbiter.
    Arrival,
    /// Request visibility until the connection is established
    /// (zero-length on a working-set hit).
    Admit,
    /// Establishment until the first payload moves (TDM slot alignment,
    /// circuit grant propagation).
    Align,
    /// First payload until the last byte is delivered.
    Transfer,
    /// Multistage route admission (zero-length, child of `Admit`).
    Route,
    /// Connection lifetime: establish to evict (teardown accounting).
    Conn,
}

impl SpanPhase {
    /// Stable lower-case label for export.
    pub fn label(self) -> &'static str {
        match self {
            SpanPhase::Msg => "msg",
            SpanPhase::Arrival => "arrival",
            SpanPhase::Admit => "admit",
            SpanPhase::Align => "align",
            SpanPhase::Transfer => "transfer",
            SpanPhase::Route => "route",
            SpanPhase::Conn => "conn",
        }
    }

    /// Inverse of [`label`](Self::label), for trace replay.
    pub fn from_label(label: &str) -> Option<SpanPhase> {
        match label {
            "msg" => Some(SpanPhase::Msg),
            "arrival" => Some(SpanPhase::Arrival),
            "admit" => Some(SpanPhase::Admit),
            "align" => Some(SpanPhase::Align),
            "transfer" => Some(SpanPhase::Transfer),
            "route" => Some(SpanPhase::Route),
            "conn" => Some(SpanPhase::Conn),
            _ => None,
        }
    }

    /// All phases, in lifecycle order (report tables iterate this).
    pub const ALL: [SpanPhase; 7] = [
        SpanPhase::Msg,
        SpanPhase::Arrival,
        SpanPhase::Admit,
        SpanPhase::Align,
        SpanPhase::Transfer,
        SpanPhase::Route,
        SpanPhase::Conn,
    ];
}

/// The kind of injected hardware fault a `FaultInjected`/`FaultCleared`
/// event describes. Mirrors `pms-faults`'s fault taxonomy without a
/// dependency on that crate (trace stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// A link or cross-point is dead: no grant, no data, for `src -> dst`.
    LinkDown,
    /// The SL cell for `src -> dst` is stuck at "never grant": the
    /// cross-point cannot close, which also breaks an established path.
    StuckGrant,
    /// The SL cell is stuck at "never release": the connection cannot be
    /// torn down while the fault is active, wasting slot capacity.
    StuckRelease,
    /// The grant line for `src -> dst` drops grants: the switch commits
    /// the connection but the NIC never learns, forcing a retry with
    /// exponential backoff.
    GrantDrop,
    /// The source NIC's serializer produces corrupted frames: message
    /// completions from `src` fail and are retried against a per-message
    /// retry budget (`src == dst` == the faulted port).
    NicTransient,
}

impl FaultClass {
    /// Stable lower-case label for export.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::LinkDown => "link-down",
            FaultClass::StuckGrant => "stuck-grant",
            FaultClass::StuckRelease => "stuck-release",
            FaultClass::GrantDrop => "grant-drop",
            FaultClass::NicTransient => "nic-transient",
        }
    }

    /// Inverse of [`label`](Self::label), for trace replay.
    pub fn from_label(label: &str) -> Option<FaultClass> {
        match label {
            "link-down" => Some(FaultClass::LinkDown),
            "stuck-grant" => Some(FaultClass::StuckGrant),
            "stuck-release" => Some(FaultClass::StuckRelease),
            "grant-drop" => Some(FaultClass::GrantDrop),
            "nic-transient" => Some(FaultClass::NicTransient),
            _ => None,
        }
    }

    /// All classes, in label order (report tables iterate this).
    pub const ALL: [FaultClass; 5] = [
        FaultClass::GrantDrop,
        FaultClass::LinkDown,
        FaultClass::NicTransient,
        FaultClass::StuckGrant,
        FaultClass::StuckRelease,
    ];
}

/// Why the admission service refused a connection request (see
/// `pms-admit`). Mirrors that crate's backpressure taxonomy without a
/// dependency on it (trace stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectCause {
    /// The tenant's token bucket was empty when the request arrived.
    RateLimit,
    /// The bounded ingress queue was full and the service runs the
    /// reject-new backpressure policy: the *arriving* request bounced.
    QueueFull,
    /// The bounded ingress queue was full and the service runs the
    /// shed-oldest backpressure policy: the *oldest queued* request was
    /// dropped to make room for the arrival.
    Shed,
    /// The request sat in the queue past its retry budget (denied by the
    /// scheduler too many batch epochs in a row) and was given up on.
    Expired,
}

impl RejectCause {
    /// Stable lower-case label for export.
    pub fn label(self) -> &'static str {
        match self {
            RejectCause::RateLimit => "rate-limit",
            RejectCause::QueueFull => "queue-full",
            RejectCause::Shed => "shed",
            RejectCause::Expired => "expired",
        }
    }

    /// Inverse of [`label`](Self::label), for trace replay.
    pub fn from_label(label: &str) -> Option<RejectCause> {
        match label {
            "rate-limit" => Some(RejectCause::RateLimit),
            "queue-full" => Some(RejectCause::QueueFull),
            "shed" => Some(RejectCause::Shed),
            "expired" => Some(RejectCause::Expired),
            _ => None,
        }
    }

    /// All causes, in label order (report tables iterate this).
    pub const ALL: [RejectCause; 4] = [
        RejectCause::Expired,
        RejectCause::QueueFull,
        RejectCause::RateLimit,
        RejectCause::Shed,
    ];
}

/// One typed simulator event. All payloads are plain integers so that
/// recording an event never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message entered its source NIC queue.
    MsgInjected {
        /// Source port.
        src: u32,
        /// Destination port.
        dst: u32,
        /// Payload size.
        bytes: u32,
        /// Workload-global message id.
        msg: u32,
    },
    /// A message's last byte reached its destination.
    MsgDelivered {
        /// Source port.
        src: u32,
        /// Destination port.
        dst: u32,
        /// Payload size.
        bytes: u32,
        /// Workload-global message id.
        msg: u32,
        /// Injection-to-delivery latency.
        latency_ns: u64,
    },
    /// A connection request first became visible to the scheduler (a VOQ
    /// went non-empty, or a circuit/wormhole setup was issued).
    ConnRequested {
        /// Requesting input port.
        src: u32,
        /// Requested output port.
        dst: u32,
    },
    /// The scheduler (or a preload stream) established `src -> dst`.
    ConnEstablished {
        /// Input port.
        src: u32,
        /// Output port.
        dst: u32,
        /// TDM configuration register the connection landed in.
        slot_idx: u32,
    },
    /// An established connection was removed from the working set.
    ConnEvicted {
        /// Input port.
        src: u32,
        /// Output port.
        dst: u32,
        /// Which policy evicted it.
        cause: EvictCause,
    },
    /// The TDM counter moved to the next configuration register.
    SlotAdvanced {
        /// The register now driving the crossbar.
        slot_idx: u32,
    },
    /// One SL array scheduling pass completed.
    SchedPass {
        /// Cumulative pass count for this run.
        passes: u64,
        /// Cells the availability ripple traversed (the combinational
        /// depth of this pass; feeds the Table-3 timing model).
        ripple_depth: u32,
        /// Connections established this pass.
        established: u32,
        /// Connections released this pass.
        released: u32,
        /// Requests denied this pass.
        denied: u32,
    },
    /// A compiled configuration was loaded into a TDM register.
    PreloadApplied {
        /// Target configuration register.
        slot_idx: u32,
        /// Connections in the loaded configuration.
        connections: u32,
    },
    /// The dynamic working set was flushed at a phase boundary.
    PhaseFlush {
        /// Connections cleared by the flush.
        cleared: u32,
    },
    /// An injected hardware fault became active.
    FaultInjected {
        /// Plan-assigned fault id (stable across repeats of a periodic
        /// fault; pairs this event with its `FaultCleared`).
        fault: u32,
        /// What broke.
        class: FaultClass,
        /// Affected input port (or the faulted NIC port).
        src: u32,
        /// Affected output port (`== src` for NIC faults).
        dst: u32,
    },
    /// A previously injected fault went away.
    FaultCleared {
        /// Plan-assigned fault id.
        fault: u32,
        /// What had broken.
        class: FaultClass,
        /// Affected input port.
        src: u32,
        /// Affected output port.
        dst: u32,
    },
    /// A message transmission failed (dropped grant or corrupted
    /// serialization) and the NIC is retrying after backoff.
    MsgRetried {
        /// Source port.
        src: u32,
        /// Destination port.
        dst: u32,
        /// Workload-global message id.
        msg: u32,
        /// Retry attempt number (1 = first retry).
        attempt: u32,
    },
    /// A message exhausted its retry budget and was dropped by the NIC.
    MsgAbandoned {
        /// Source port.
        src: u32,
        /// Destination port.
        dst: u32,
        /// Workload-global message id.
        msg: u32,
        /// Retries spent before giving up.
        retries: u32,
    },
    /// A connection request entered the admission service's bounded
    /// ingress queue (see `pms-admit`).
    RequestEnqueued {
        /// Stream-global request id, assigned in ingest order.
        req: u32,
        /// Tenant the request belongs to (rate-limit accounting key).
        tenant: u32,
        /// Requested input port.
        src: u32,
        /// Requested output port.
        dst: u32,
    },
    /// A queued connection request was granted: its pair is resident in
    /// some TDM configuration register (freshly established, or a
    /// working-set hit).
    RequestGranted {
        /// Stream-global request id.
        req: u32,
        /// Tenant the request belongs to.
        tenant: u32,
        /// Input port.
        src: u32,
        /// Output port.
        dst: u32,
        /// Virtual time spent queued, enqueue to grant.
        wait_ns: u64,
    },
    /// A connection request was refused by the admission service
    /// (backpressure, rate limiting, or retry-budget exhaustion).
    RequestRejected {
        /// Stream-global request id.
        req: u32,
        /// Tenant the request belongs to.
        tenant: u32,
        /// Requested input port.
        src: u32,
        /// Requested output port.
        dst: u32,
        /// Why it bounced.
        cause: RejectCause,
    },
    /// One admission batch epoch completed: queued requests were coalesced
    /// into a word-parallel request matrix and driven through a scheduler
    /// pass (see `pms-admit`).
    BatchAdmitted {
        /// Batch epoch index.
        batch: u32,
        /// Matrix capacity: the most pairs one epoch may select.
        capacity: u32,
        /// Distinct pairs coalesced into this epoch's request matrix.
        selected: u32,
        /// Requests granted this epoch (establishments plus hits).
        granted: u32,
        /// Pairs the scheduler denied this epoch (requeued to retry).
        denied: u32,
        /// Ingress-queue depth after the epoch.
        pending: u32,
    },
    /// A causal span opened (see [`SpanPhase`] for the taxonomy).
    SpanStart {
        /// Span id, unique within a run (see `pms_trace::span` for the
        /// deterministic allocation scheme).
        span: u32,
        /// Parent span id, or [`NO_PARENT`](crate::span::NO_PARENT) for
        /// roots.
        parent: u32,
        /// Which lifecycle phase this span covers.
        phase: SpanPhase,
        /// Workload-global message id, or
        /// [`NO_MSG`](crate::span::NO_MSG) for connection spans.
        msg: u32,
        /// Source port of the message or connection.
        src: u32,
        /// Destination port of the message or connection.
        dst: u32,
    },
    /// A causal span closed. Every `SpanStart` is closed exactly once,
    /// at a time no earlier than its start (run finalization closes any
    /// span still open).
    SpanEnd {
        /// Span id matching the `SpanStart`.
        span: u32,
        /// Phase, repeated so the record is self-describing.
        phase: SpanPhase,
        /// Message id (or `NO_MSG`), repeated for self-description.
        msg: u32,
    },
    /// Per-window metrics deltas emitted by the snapshot pipeline when a
    /// slot window closes (see `pms_trace::timeseries`). Windows are keyed
    /// to simulation time — never wall clock — so JSONL replay
    /// reconstructs the exact series. All-idle windows are skipped; gaps
    /// in `seq` are therefore meaningful, not lossy.
    MetricsSnapshot {
        /// Window index: `window_start_ns / window_ns`.
        seq: u32,
        /// Messages delivered in this window.
        delivered: u32,
        /// Payload bytes delivered in this window.
        bytes: u64,
        /// Connections established in this window.
        established: u32,
        /// Connections evicted in this window.
        evicted: u32,
        /// Scheduler denials in this window (summed over passes).
        denied: u32,
        /// Message retries in this window.
        retries: u32,
        /// Messages abandoned in this window.
        abandoned: u32,
        /// Faults injected in this window.
        faults_injected: u32,
        /// Faults cleared in this window.
        faults_cleared: u32,
        /// Request→establish setups completed in this window.
        setups: u32,
        /// Sum of setup latencies completed in this window.
        setup_total_ns: u64,
        /// Worst setup latency completed in this window.
        setup_max_ns: u64,
        /// Scheduling passes run in this window.
        passes: u32,
        /// Admission requests enqueued in this window.
        enqueued: u32,
        /// Admission requests granted in this window.
        granted: u32,
        /// Admission requests rejected in this window.
        rejected: u32,
        /// Admission batch epochs completed in this window.
        batches: u32,
    },
    /// An alert rule started firing (see `pms_trace::alerts`). Carries the
    /// rule's *index* in the rules file — names live in the file, so the
    /// event stays allocation-free and replay needs no side channel.
    AlertRaised {
        /// 0-based rule index in the rules file.
        rule: u32,
        /// Snapshot window (`MetricsSnapshot::seq`) that tripped the rule.
        seq: u32,
        /// Observed metric value (two's-complement `i64` for rate rules).
        value: u64,
        /// Threshold the value breached (same encoding as `value`).
        threshold: u64,
    },
    /// A previously raised alert rule stopped firing.
    AlertCleared {
        /// 0-based rule index in the rules file.
        rule: u32,
        /// Snapshot window that satisfied the clear condition.
        seq: u32,
    },
}

impl TraceEvent {
    /// Stable kebab-case event name used by the exporters.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::MsgInjected { .. } => "msg-injected",
            TraceEvent::MsgDelivered { .. } => "msg-delivered",
            TraceEvent::ConnRequested { .. } => "conn-requested",
            TraceEvent::ConnEstablished { .. } => "conn-established",
            TraceEvent::ConnEvicted { .. } => "conn-evicted",
            TraceEvent::SlotAdvanced { .. } => "slot-advanced",
            TraceEvent::SchedPass { .. } => "sched-pass",
            TraceEvent::PreloadApplied { .. } => "preload-applied",
            TraceEvent::PhaseFlush { .. } => "phase-flush",
            TraceEvent::FaultInjected { .. } => "fault-injected",
            TraceEvent::FaultCleared { .. } => "fault-cleared",
            TraceEvent::MsgRetried { .. } => "msg-retried",
            TraceEvent::MsgAbandoned { .. } => "msg-abandoned",
            TraceEvent::RequestEnqueued { .. } => "request-enqueued",
            TraceEvent::RequestGranted { .. } => "request-granted",
            TraceEvent::RequestRejected { .. } => "request-rejected",
            TraceEvent::BatchAdmitted { .. } => "batch-admitted",
            TraceEvent::SpanStart { .. } => "span-start",
            TraceEvent::SpanEnd { .. } => "span-end",
            TraceEvent::MetricsSnapshot { .. } => "metrics-snapshot",
            TraceEvent::AlertRaised { .. } => "alert-raised",
            TraceEvent::AlertCleared { .. } => "alert-cleared",
        }
    }

    /// Number of distinct event kinds (exporter sanity checks).
    pub const KIND_COUNT: usize = 22;
}

/// A [`TraceEvent`] stamped with when (simulation ns) and where (active
/// TDM slot) it happened.
///
/// Paradigms without TDM slots (wormhole, circuit) stamp `slot = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time in nanoseconds.
    pub t_ns: u64,
    /// TDM slot active when the event fired.
    pub slot: u32,
    /// The event payload.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_complete() {
        let events = [
            TraceEvent::MsgInjected {
                src: 0,
                dst: 1,
                bytes: 64,
                msg: 0,
            },
            TraceEvent::MsgDelivered {
                src: 0,
                dst: 1,
                bytes: 64,
                msg: 0,
                latency_ns: 10,
            },
            TraceEvent::ConnRequested { src: 0, dst: 1 },
            TraceEvent::ConnEstablished {
                src: 0,
                dst: 1,
                slot_idx: 0,
            },
            TraceEvent::ConnEvicted {
                src: 0,
                dst: 1,
                cause: EvictCause::Timeout,
            },
            TraceEvent::SlotAdvanced { slot_idx: 1 },
            TraceEvent::SchedPass {
                passes: 1,
                ripple_depth: 3,
                established: 1,
                released: 0,
                denied: 0,
            },
            TraceEvent::PreloadApplied {
                slot_idx: 2,
                connections: 8,
            },
            TraceEvent::PhaseFlush { cleared: 5 },
            TraceEvent::FaultInjected {
                fault: 0,
                class: FaultClass::LinkDown,
                src: 0,
                dst: 1,
            },
            TraceEvent::FaultCleared {
                fault: 0,
                class: FaultClass::LinkDown,
                src: 0,
                dst: 1,
            },
            TraceEvent::MsgRetried {
                src: 0,
                dst: 1,
                msg: 0,
                attempt: 1,
            },
            TraceEvent::MsgAbandoned {
                src: 0,
                dst: 1,
                msg: 0,
                retries: 3,
            },
            TraceEvent::RequestEnqueued {
                req: 0,
                tenant: 0,
                src: 0,
                dst: 1,
            },
            TraceEvent::RequestGranted {
                req: 0,
                tenant: 0,
                src: 0,
                dst: 1,
                wait_ns: 400,
            },
            TraceEvent::RequestRejected {
                req: 1,
                tenant: 0,
                src: 0,
                dst: 1,
                cause: RejectCause::RateLimit,
            },
            TraceEvent::BatchAdmitted {
                batch: 0,
                capacity: 8,
                selected: 4,
                granted: 3,
                denied: 1,
                pending: 2,
            },
            TraceEvent::SpanStart {
                span: 1,
                parent: u32::MAX,
                phase: SpanPhase::Msg,
                msg: 0,
                src: 0,
                dst: 1,
            },
            TraceEvent::SpanEnd {
                span: 1,
                phase: SpanPhase::Msg,
                msg: 0,
            },
            TraceEvent::MetricsSnapshot {
                seq: 0,
                delivered: 4,
                bytes: 256,
                established: 2,
                evicted: 1,
                denied: 0,
                retries: 0,
                abandoned: 0,
                faults_injected: 0,
                faults_cleared: 0,
                setups: 2,
                setup_total_ns: 160,
                setup_max_ns: 90,
                passes: 8,
                enqueued: 3,
                granted: 2,
                rejected: 1,
                batches: 1,
            },
            TraceEvent::AlertRaised {
                rule: 0,
                seq: 0,
                value: 4,
                threshold: 2,
            },
            TraceEvent::AlertCleared { rule: 0, seq: 1 },
        ];
        let mut kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), TraceEvent::KIND_COUNT);
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), TraceEvent::KIND_COUNT, "duplicate kind labels");
    }

    #[test]
    fn evict_cause_labels_are_distinct() {
        let labels: std::collections::BTreeSet<&str> =
            EvictCause::ALL.into_iter().map(EvictCause::label).collect();
        assert_eq!(labels.len(), EvictCause::ALL.len());
    }

    #[test]
    fn evict_cause_labels_roundtrip() {
        for cause in EvictCause::ALL {
            assert_eq!(EvictCause::from_label(cause.label()), Some(cause));
        }
        assert_eq!(EvictCause::from_label("nonsense"), None);
    }

    /// `ALL` and `from_label` are maintained by hand; this guard makes a
    /// new variant a compile error here (the exhaustive match) and a test
    /// failure if it is forgotten in `ALL` or `from_label`.
    #[test]
    fn evict_cause_all_is_exhaustive() {
        fn ordinal(cause: EvictCause) -> usize {
            // Exhaustive on purpose: adding a variant breaks this match.
            match cause {
                EvictCause::Timeout => 0,
                EvictCause::RefCount => 1,
                EvictCause::PhaseFlush => 2,
                EvictCause::Drop => 3,
                EvictCause::Fault => 4,
            }
        }
        const VARIANTS: usize = 5;
        assert_eq!(EvictCause::ALL.len(), VARIANTS, "ALL misses a variant");
        let mut seen = [false; VARIANTS];
        for cause in EvictCause::ALL {
            let i = ordinal(cause);
            assert!(!seen[i], "{cause:?} listed twice in ALL");
            seen[i] = true;
            assert_eq!(
                EvictCause::from_label(cause.label()),
                Some(cause),
                "{cause:?} desynced from from_label"
            );
        }
        assert!(seen.iter().all(|&s| s), "ALL misses a variant");
        assert!(
            EvictCause::ALL
                .windows(2)
                .all(|w| w[0].label() < w[1].label()),
            "ALL must stay in label order (report tables iterate it)"
        );
    }

    /// Same hand-maintenance guard as `evict_cause_all_is_exhaustive`,
    /// for the admission reject causes.
    #[test]
    fn reject_cause_all_is_exhaustive() {
        fn ordinal(cause: RejectCause) -> usize {
            // Exhaustive on purpose: adding a variant breaks this match.
            match cause {
                RejectCause::RateLimit => 0,
                RejectCause::QueueFull => 1,
                RejectCause::Shed => 2,
                RejectCause::Expired => 3,
            }
        }
        const VARIANTS: usize = 4;
        assert_eq!(RejectCause::ALL.len(), VARIANTS, "ALL misses a variant");
        let mut seen = [false; VARIANTS];
        for cause in RejectCause::ALL {
            let i = ordinal(cause);
            assert!(!seen[i], "{cause:?} listed twice in ALL");
            seen[i] = true;
            assert_eq!(
                RejectCause::from_label(cause.label()),
                Some(cause),
                "{cause:?} desynced from from_label"
            );
        }
        assert!(seen.iter().all(|&s| s), "ALL misses a variant");
        assert!(
            RejectCause::ALL
                .windows(2)
                .all(|w| w[0].label() < w[1].label()),
            "ALL must stay in label order (report tables iterate it)"
        );
        assert_eq!(RejectCause::from_label("nonsense"), None);
    }

    #[test]
    fn span_phase_labels_roundtrip_and_are_distinct() {
        let labels: std::collections::BTreeSet<&str> =
            SpanPhase::ALL.into_iter().map(SpanPhase::label).collect();
        assert_eq!(labels.len(), SpanPhase::ALL.len());
        for phase in SpanPhase::ALL {
            assert_eq!(SpanPhase::from_label(phase.label()), Some(phase));
        }
        assert_eq!(SpanPhase::from_label("nonsense"), None);
    }

    #[test]
    fn fault_class_labels_roundtrip_and_are_distinct() {
        let labels: std::collections::BTreeSet<&str> =
            FaultClass::ALL.into_iter().map(FaultClass::label).collect();
        assert_eq!(labels.len(), FaultClass::ALL.len());
        for class in FaultClass::ALL {
            assert_eq!(FaultClass::from_label(class.label()), Some(class));
        }
        assert_eq!(FaultClass::from_label("nonsense"), None);
    }
}
