//! The event taxonomy: everything the simulators can say about a run.

/// Why a cached connection was evicted from the working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictCause {
    /// A [`TimeoutPredictor`](../pms_predict) decided the connection was
    /// idle too long (§3.2).
    Timeout,
    /// A reference-count predictor's counter crossed its threshold
    /// (§3.2).
    RefCount,
    /// The §3.3 phase detector (or an explicit engine flush) dropped the
    /// whole dynamic working set at a phase boundary.
    PhaseFlush,
    /// The connection is torn down as soon as its message completes
    /// (non-predictive paradigms: circuit switching, `PredictorKind::Drop`).
    Drop,
}

impl EvictCause {
    /// Stable lower-case label for export.
    pub fn label(self) -> &'static str {
        match self {
            EvictCause::Timeout => "timeout",
            EvictCause::RefCount => "refcount",
            EvictCause::PhaseFlush => "phase-flush",
            EvictCause::Drop => "drop",
        }
    }

    /// Inverse of [`label`](Self::label), for trace replay.
    pub fn from_label(label: &str) -> Option<EvictCause> {
        match label {
            "timeout" => Some(EvictCause::Timeout),
            "refcount" => Some(EvictCause::RefCount),
            "phase-flush" => Some(EvictCause::PhaseFlush),
            "drop" => Some(EvictCause::Drop),
            _ => None,
        }
    }

    /// All causes, in label order (report tables iterate this).
    pub const ALL: [EvictCause; 4] = [
        EvictCause::Drop,
        EvictCause::PhaseFlush,
        EvictCause::RefCount,
        EvictCause::Timeout,
    ];
}

/// One typed simulator event. All payloads are plain integers so that
/// recording an event never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message entered its source NIC queue.
    MsgInjected {
        /// Source port.
        src: u32,
        /// Destination port.
        dst: u32,
        /// Payload size.
        bytes: u32,
        /// Workload-global message id.
        msg: u32,
    },
    /// A message's last byte reached its destination.
    MsgDelivered {
        /// Source port.
        src: u32,
        /// Destination port.
        dst: u32,
        /// Payload size.
        bytes: u32,
        /// Workload-global message id.
        msg: u32,
        /// Injection-to-delivery latency.
        latency_ns: u64,
    },
    /// A connection request first became visible to the scheduler (a VOQ
    /// went non-empty, or a circuit/wormhole setup was issued).
    ConnRequested {
        /// Requesting input port.
        src: u32,
        /// Requested output port.
        dst: u32,
    },
    /// The scheduler (or a preload stream) established `src -> dst`.
    ConnEstablished {
        /// Input port.
        src: u32,
        /// Output port.
        dst: u32,
        /// TDM configuration register the connection landed in.
        slot_idx: u32,
    },
    /// An established connection was removed from the working set.
    ConnEvicted {
        /// Input port.
        src: u32,
        /// Output port.
        dst: u32,
        /// Which policy evicted it.
        cause: EvictCause,
    },
    /// The TDM counter moved to the next configuration register.
    SlotAdvanced {
        /// The register now driving the crossbar.
        slot_idx: u32,
    },
    /// One SL array scheduling pass completed.
    SchedPass {
        /// Cumulative pass count for this run.
        passes: u64,
        /// Cells the availability ripple traversed (the combinational
        /// depth of this pass; feeds the Table-3 timing model).
        ripple_depth: u32,
        /// Connections established this pass.
        established: u32,
        /// Connections released this pass.
        released: u32,
        /// Requests denied this pass.
        denied: u32,
    },
    /// A compiled configuration was loaded into a TDM register.
    PreloadApplied {
        /// Target configuration register.
        slot_idx: u32,
        /// Connections in the loaded configuration.
        connections: u32,
    },
    /// The dynamic working set was flushed at a phase boundary.
    PhaseFlush {
        /// Connections cleared by the flush.
        cleared: u32,
    },
}

impl TraceEvent {
    /// Stable kebab-case event name used by the exporters.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::MsgInjected { .. } => "msg-injected",
            TraceEvent::MsgDelivered { .. } => "msg-delivered",
            TraceEvent::ConnRequested { .. } => "conn-requested",
            TraceEvent::ConnEstablished { .. } => "conn-established",
            TraceEvent::ConnEvicted { .. } => "conn-evicted",
            TraceEvent::SlotAdvanced { .. } => "slot-advanced",
            TraceEvent::SchedPass { .. } => "sched-pass",
            TraceEvent::PreloadApplied { .. } => "preload-applied",
            TraceEvent::PhaseFlush { .. } => "phase-flush",
        }
    }

    /// Number of distinct event kinds (exporter sanity checks).
    pub const KIND_COUNT: usize = 9;
}

/// A [`TraceEvent`] stamped with when (simulation ns) and where (active
/// TDM slot) it happened.
///
/// Paradigms without TDM slots (wormhole, circuit) stamp `slot = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time in nanoseconds.
    pub t_ns: u64,
    /// TDM slot active when the event fired.
    pub slot: u32,
    /// The event payload.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_complete() {
        let events = [
            TraceEvent::MsgInjected {
                src: 0,
                dst: 1,
                bytes: 64,
                msg: 0,
            },
            TraceEvent::MsgDelivered {
                src: 0,
                dst: 1,
                bytes: 64,
                msg: 0,
                latency_ns: 10,
            },
            TraceEvent::ConnRequested { src: 0, dst: 1 },
            TraceEvent::ConnEstablished {
                src: 0,
                dst: 1,
                slot_idx: 0,
            },
            TraceEvent::ConnEvicted {
                src: 0,
                dst: 1,
                cause: EvictCause::Timeout,
            },
            TraceEvent::SlotAdvanced { slot_idx: 1 },
            TraceEvent::SchedPass {
                passes: 1,
                ripple_depth: 3,
                established: 1,
                released: 0,
                denied: 0,
            },
            TraceEvent::PreloadApplied {
                slot_idx: 2,
                connections: 8,
            },
            TraceEvent::PhaseFlush { cleared: 5 },
        ];
        let mut kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), TraceEvent::KIND_COUNT);
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), TraceEvent::KIND_COUNT, "duplicate kind labels");
    }

    #[test]
    fn evict_cause_labels_are_distinct() {
        let labels: std::collections::BTreeSet<&str> = [
            EvictCause::Timeout.label(),
            EvictCause::RefCount.label(),
            EvictCause::PhaseFlush.label(),
            EvictCause::Drop.label(),
        ]
        .into_iter()
        .collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn evict_cause_labels_roundtrip() {
        for cause in EvictCause::ALL {
            assert_eq!(EvictCause::from_label(cause.label()), Some(cause));
        }
        assert_eq!(EvictCause::from_label("nonsense"), None);
    }
}
