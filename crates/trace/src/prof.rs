//! Kernel perf counters: a zero-dep, always-compiled-in profile registry
//! for the simulator's hot kernels.
//!
//! Each kernel call site wraps its body in a [`ProfScope`]; dropping the
//! scope records one invocation, the words it touched, and — on a 1-in-64
//! sample — its wall time via [`std::time::Instant`]. Everything lands in
//! a fixed static table of relaxed atomics, so:
//!
//! * **disabled** (the default) costs one relaxed load and a predicted
//!   branch per kernel call — well inside the ≤2% Null-sink overhead
//!   budget asserted by the `trace_overhead` benchmark;
//! * **enabled** costs two relaxed `fetch_add`s per call plus a sampled
//!   `Instant` pair, and needs no registry plumbed through call sites
//!   (the kernels live in crates below the simulators).
//!
//! Counters are process-global; [`reset`] zeroes them between runs and
//! [`export_metrics`] copies a snapshot into a [`MetricsRegistry`] under
//! `prof.<kernel>.{calls,words,timed_calls,timed_ns}`.

use crate::metrics::MetricsRegistry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// The instrumented hot kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfKernel {
    /// One SL-array scheduling pass (`pms-sched::sl_pass`).
    SlPass = 0,
    /// A word-parallel bit-matrix reduction (`pms-bitmat`).
    BitmatReduce = 1,
    /// One multistage route search (`pms-multistage` DFS).
    RouteDfs = 2,
    /// An idle-skip boundary scan in a simulator main loop.
    IdleScan = 3,
}

/// Number of kernels (size of the static counter table).
const KERNEL_COUNT: usize = 4;

/// Time every `SAMPLE_MASK + 1`-th invocation (must be a power of two
/// minus one).
const SAMPLE_MASK: u64 = 63;

impl ProfKernel {
    /// Every kernel, in table order.
    pub const ALL: [ProfKernel; KERNEL_COUNT] = [
        ProfKernel::SlPass,
        ProfKernel::BitmatReduce,
        ProfKernel::RouteDfs,
        ProfKernel::IdleScan,
    ];

    /// Stable label used in metric names and JSON exports.
    pub fn label(self) -> &'static str {
        match self {
            ProfKernel::SlPass => "sl_pass",
            ProfKernel::BitmatReduce => "bitmat_reduce",
            ProfKernel::RouteDfs => "route_dfs",
            ProfKernel::IdleScan => "idle_scan",
        }
    }
}

/// One kernel's counters. All relaxed: per-counter totals are exact, the
/// set is only quiescently consistent, which is all a profile needs.
struct Cell {
    calls: AtomicU64,
    words: AtomicU64,
    timed_calls: AtomicU64,
    timed_ns: AtomicU64,
}

impl Cell {
    const fn new() -> Self {
        Cell {
            calls: AtomicU64::new(0),
            words: AtomicU64::new(0),
            timed_calls: AtomicU64::new(0),
            timed_ns: AtomicU64::new(0),
        }
    }
}

static CELLS: [Cell; KERNEL_COUNT] = [const { Cell::new() }; KERNEL_COUNT];
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns profiling on or off (global; off by default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Whether profiling is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Zeroes every counter (call between runs; enablement is unchanged).
pub fn reset() {
    for cell in &CELLS {
        cell.calls.store(0, Relaxed);
        cell.words.store(0, Relaxed);
        cell.timed_calls.store(0, Relaxed);
        cell.timed_ns.store(0, Relaxed);
    }
}

/// A read-only copy of one kernel's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSnapshot {
    /// Which kernel.
    pub kernel: ProfKernel,
    /// Invocations recorded.
    pub calls: u64,
    /// Words touched, as reported by call sites via
    /// [`ProfScope::add_words`].
    pub words: u64,
    /// Invocations that were wall-time sampled (1 in 64).
    pub timed_calls: u64,
    /// Total wall time of the sampled invocations, in nanoseconds.
    pub timed_ns: u64,
}

impl KernelSnapshot {
    /// Mean nanoseconds per sampled call (`None` until something was
    /// sampled).
    pub fn mean_ns(&self) -> Option<u64> {
        (self.timed_calls > 0).then(|| self.timed_ns / self.timed_calls)
    }
}

/// Copies of all kernel counters, in [`ProfKernel::ALL`] order.
pub fn snapshot() -> Vec<KernelSnapshot> {
    ProfKernel::ALL
        .iter()
        .map(|&kernel| {
            let cell = &CELLS[kernel as usize];
            KernelSnapshot {
                kernel,
                calls: cell.calls.load(Relaxed),
                words: cell.words.load(Relaxed),
                timed_calls: cell.timed_calls.load(Relaxed),
                timed_ns: cell.timed_ns.load(Relaxed),
            }
        })
        .collect()
}

/// Exports the current counters into `reg` as
/// `prof.<kernel>.{calls,words,timed_calls,timed_ns}` counters.
pub fn export_metrics(reg: &mut MetricsRegistry) {
    for snap in snapshot() {
        let label = snap.kernel.label();
        for (suffix, value) in [
            ("calls", snap.calls),
            ("words", snap.words),
            ("timed_calls", snap.timed_calls),
            ("timed_ns", snap.timed_ns),
        ] {
            let id = reg.counter(&format!("prof.{label}.{suffix}"));
            reg.set(id, value);
        }
    }
}

/// RAII guard instrumenting one kernel invocation.
///
/// Construct with [`ProfScope::enter`] at the top of the kernel, report
/// touched words with [`ProfScope::add_words`], and let the drop record
/// everything. When profiling is disabled the scope is inert.
#[must_use = "a ProfScope records on drop; binding it to _ discards the measurement"]
pub struct ProfScope {
    kernel: ProfKernel,
    active: bool,
    words: u64,
    start: Option<Instant>,
}

impl ProfScope {
    /// Opens a scope for `kernel`; inert when profiling is off.
    #[inline]
    pub fn enter(kernel: ProfKernel) -> ProfScope {
        let active = ENABLED.load(Relaxed);
        let start = if active {
            // Sample wall time 1 call in 64, keyed off the running call
            // count so the samples spread across the run.
            let prev = CELLS[kernel as usize].calls.fetch_add(1, Relaxed);
            (prev & SAMPLE_MASK == 0).then(Instant::now)
        } else {
            None
        };
        ProfScope {
            kernel,
            active,
            words: 0,
            start,
        }
    }

    /// Adds `n` to the words-touched total recorded at drop.
    #[inline]
    pub fn add_words(&mut self, n: u64) {
        if self.active {
            self.words += n;
        }
    }
}

impl Drop for ProfScope {
    #[inline]
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let cell = &CELLS[self.kernel as usize];
        if self.words > 0 {
            cell.words.fetch_add(self.words, Relaxed);
        }
        if let Some(start) = self.start {
            cell.timed_calls.fetch_add(1, Relaxed);
            cell.timed_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counters are process-global and cargo runs tests on threads,
    // so everything touching them lives in this one serialized test.
    #[test]
    fn prof_counters_record_and_export() {
        reset();
        assert!(!enabled(), "profiling is off by default");

        // Disabled scopes record nothing.
        {
            let mut s = ProfScope::enter(ProfKernel::SlPass);
            s.add_words(128);
        }
        assert_eq!(snapshot()[ProfKernel::SlPass as usize].calls, 0);

        set_enabled(true);
        for _ in 0..65 {
            let mut s = ProfScope::enter(ProfKernel::SlPass);
            s.add_words(4);
        }
        {
            let _s = ProfScope::enter(ProfKernel::RouteDfs);
        }
        set_enabled(false);

        let snaps = snapshot();
        let sl = snaps[ProfKernel::SlPass as usize];
        assert_eq!(sl.calls, 65);
        assert_eq!(sl.words, 65 * 4);
        // Calls 0 and 64 hit the 1-in-64 sample.
        assert_eq!(sl.timed_calls, 2);
        assert!(sl.mean_ns().is_some());
        assert_eq!(snaps[ProfKernel::RouteDfs as usize].calls, 1);
        assert_eq!(snaps[ProfKernel::BitmatReduce as usize].calls, 0);

        let mut reg = MetricsRegistry::new();
        export_metrics(&mut reg);
        assert_eq!(reg.counter_value("prof.sl_pass.calls"), Some(65));
        assert_eq!(reg.counter_value("prof.sl_pass.words"), Some(65 * 4));
        assert_eq!(reg.counter_value("prof.route_dfs.calls"), Some(1));

        reset();
        assert_eq!(snapshot()[ProfKernel::SlPass as usize].calls, 0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            ProfKernel::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), ProfKernel::ALL.len());
    }
}
