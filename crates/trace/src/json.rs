//! A minimal JSON value tree and renderer.
//!
//! The workspace builds offline with zero external dependencies, and the
//! exporters only ever need to *write* JSON, so this is deliberately a
//! serializer, not a parser. Numbers are emitted losslessly for integers;
//! floats use `{:?}` formatting (shortest round-trip representation).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A finite float (non-finite values render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::Float(0.5).render(), "0.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
        assert_eq!(Json::str("héllo").render(), "\"héllo\"");
    }

    #[test]
    fn containers_render_compact_and_pretty() {
        let v = Json::obj([
            ("a", Json::Array(vec![Json::UInt(1), Json::UInt(2)])),
            ("b", Json::obj([("c", Json::Null)])),
            ("empty", Json::Array(vec![])),
        ]);
        assert_eq!(v.render(), r#"{"a":[1,2],"b":{"c":null},"empty":[]}"#);
        let pretty = v.render_pretty();
        assert!(
            pretty.contains("  \"a\": [\n    1,\n    2\n  ]"),
            "{pretty}"
        );
        assert!(pretty.ends_with("}\n"));
    }
}
