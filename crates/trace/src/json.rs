//! A minimal JSON value tree, renderer, and parser.
//!
//! The workspace builds offline with zero external dependencies, so this
//! is hand-rolled. Numbers are emitted losslessly for integers; floats
//! use `{:?}` formatting (shortest round-trip representation). The
//! parser exists so that JSONL traces written by [`crate::JsonlTracer`]
//! can be replayed (by `pms-analyze`); it accepts any standard JSON
//! document, preferring `UInt`/`Int` for integral numbers so that `u64`
//! values round-trip exactly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A finite float (non-finite values render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Parses a JSON document (the whole string must be one value plus
    /// optional surrounding whitespace).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` (`UInt`, or a non-negative `Int`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u`, combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a `\uXXXX` low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        let neg = self.peek() == Some(b'-');
        if neg {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if neg {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::Int(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        // Fractional, exponent, or out-of-range integer: fall back to f64.
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| ParseError {
                offset: start,
                msg: format!("invalid number `{text}`"),
            })
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::Float(0.5).render(), "0.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
        assert_eq!(Json::str("héllo").render(), "\"héllo\"");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("0.25").unwrap(), Json::Float(0.25));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1 2").is_err(), "trailing value must error");
        assert!(Json::parse("\"\\ud800\"").is_err(), "lone surrogate");
    }

    #[test]
    fn roundtrip_escapes_and_extremes() {
        // The satellite cases: quotes, backslashes, control characters,
        // and full-range u64 values must all survive render -> parse.
        let cases = vec![
            Json::str("quote \" backslash \\ slash / done"),
            Json::str("ctrl \u{1} \u{1f} tab\t nl\n cr\r"),
            Json::str("héllo → 🚀"),
            Json::UInt(u64::MAX),
            Json::UInt(0),
            Json::Int(i64::MIN),
            Json::obj([
                ("k\"ey", Json::Array(vec![Json::UInt(1), Json::Null])),
                ("nested", Json::obj([("f", Json::Float(1.5))])),
                ("big", Json::UInt(u64::MAX - 1)),
            ]),
        ];
        for v in cases {
            let rendered = v.render();
            let parsed = Json::parse(&rendered).unwrap_or_else(|e| panic!("{rendered}: {e}"));
            assert_eq!(parsed, v, "round-trip failed for {rendered}");
            // Pretty rendering must parse back to the same value too.
            let parsed_pretty = Json::parse(&v.render_pretty()).unwrap();
            assert_eq!(parsed_pretty, v);
        }
    }

    #[test]
    fn fault_event_jsonl_roundtrips() {
        use crate::event::{FaultClass, TraceEvent, TraceRecord};
        use crate::sink::record_json;
        let recs = [
            TraceRecord {
                t_ns: 100,
                slot: 1,
                event: TraceEvent::FaultInjected {
                    fault: 7,
                    class: FaultClass::LinkDown,
                    src: 2,
                    dst: 3,
                },
            },
            TraceRecord {
                t_ns: 200,
                slot: 2,
                event: TraceEvent::FaultCleared {
                    fault: 7,
                    class: FaultClass::StuckRelease,
                    src: 2,
                    dst: 3,
                },
            },
            TraceRecord {
                t_ns: 300,
                slot: 3,
                event: TraceEvent::MsgRetried {
                    src: 0,
                    dst: 5,
                    msg: 42,
                    attempt: 2,
                },
            },
            TraceRecord {
                t_ns: 400,
                slot: 4,
                event: TraceEvent::MsgAbandoned {
                    src: 0,
                    dst: 5,
                    msg: 42,
                    retries: 8,
                },
            },
        ];
        for rec in &recs {
            let doc = record_json(rec);
            let line = doc.render();
            let parsed = Json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(parsed, doc, "JSONL round-trip failed for {line}");
            assert_eq!(
                parsed.get("kind").and_then(Json::as_str),
                Some(rec.event.kind())
            );
            assert_eq!(parsed.get("t_ns").and_then(Json::as_u64), Some(rec.t_ns));
        }
        // The fault class travels as its label and parses back to the enum.
        let injected = Json::parse(&record_json(&recs[0]).render()).unwrap();
        let label = injected.get("class").and_then(Json::as_str).unwrap();
        assert_eq!(FaultClass::from_label(label), Some(FaultClass::LinkDown));
        let retried = Json::parse(&record_json(&recs[2]).render()).unwrap();
        assert_eq!(retried.get("attempt").and_then(Json::as_u64), Some(2));
        let abandoned = Json::parse(&record_json(&recs[3]).render()).unwrap();
        assert_eq!(abandoned.get("retries").and_then(Json::as_u64), Some(8));
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(Json::parse(r#""\u0041""#).unwrap(), Json::str("A"));
        // Surrogate pair for 🚀 (U+1F680).
        assert_eq!(
            Json::parse(r#""\ud83d\ude80""#).unwrap(),
            Json::str("\u{1f680}")
        );
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a":1,"b":"x","c":-2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_u64), None, "negative");
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("a").is_none());
    }

    #[test]
    fn containers_render_compact_and_pretty() {
        let v = Json::obj([
            ("a", Json::Array(vec![Json::UInt(1), Json::UInt(2)])),
            ("b", Json::obj([("c", Json::Null)])),
            ("empty", Json::Array(vec![])),
        ]);
        assert_eq!(v.render(), r#"{"a":[1,2],"b":{"c":null},"empty":[]}"#);
        let pretty = v.render_pretty();
        assert!(
            pretty.contains("  \"a\": [\n    1,\n    2\n  ]"),
            "{pretty}"
        );
        assert!(pretty.ends_with("}\n"));
    }
}
