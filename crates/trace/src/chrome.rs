//! Chrome-trace export: renders a recorded timeline as the JSON array
//! flavor of the Trace Event Format, loadable in `chrome://tracing` and
//! Perfetto's legacy importer.
//!
//! Mapping:
//!
//! * every record becomes an instant event (`"ph": "i"`, thread scope)
//!   named after [`TraceEvent::kind`], with the payload under `args`;
//! * `msg-delivered` additionally emits a complete event (`"ph": "X"`)
//!   spanning injection to delivery, so message lifetimes render as bars;
//! * `tid` groups events by actor: the source port for per-message and
//!   per-connection events, the scheduler pseudo-thread for scheduler
//!   events. `pid` is always 0.
//!
//! Timestamps are microseconds (floats), as the format requires.

use crate::event::{TraceEvent, TraceRecord};
use crate::json::Json;
use std::io;
use std::path::Path;

/// Pseudo-thread id used for scheduler/slot/phase events.
const SCHED_TID: u64 = 9_999;

fn us(t_ns: u64) -> f64 {
    t_ns as f64 / 1e3
}

/// Base of the per-connection-span tid range (above any port or message
/// row).
const CONN_TID_BASE: u64 = 1 << 20;

/// Row assignment for span begin/end pairs: message spans share the
/// message's row; each connection span gets its own.
fn span_tid(span: u32, msg: u32) -> u64 {
    if msg == u32::MAX {
        CONN_TID_BASE + (span & !crate::span::CONN_SPAN_BIT) as u64
    } else {
        msg as u64
    }
}

fn instant(rec: &TraceRecord, tid: u64, args: Vec<(&'static str, Json)>) -> Json {
    let mut fields = vec![
        ("name", Json::str(rec.event.kind())),
        ("ph", Json::str("i")),
        ("s", Json::str("t")),
        ("ts", Json::Float(us(rec.t_ns))),
        ("pid", Json::UInt(0)),
        ("tid", Json::UInt(tid)),
    ];
    let mut all_args = vec![("slot", Json::UInt(rec.slot as u64))];
    all_args.extend(args);
    fields.push(("args", Json::obj(all_args)));
    Json::obj(fields)
}

/// Renders records as a Chrome trace JSON array.
pub fn chrome_trace_json(records: &[TraceRecord]) -> Json {
    let mut events = Vec::with_capacity(records.len() + records.len() / 4);
    for rec in records {
        match rec.event {
            TraceEvent::MsgInjected {
                src,
                dst,
                bytes,
                msg,
            } => {
                events.push(instant(
                    rec,
                    src as u64,
                    vec![
                        ("src", src.into()),
                        ("dst", dst.into()),
                        ("bytes", bytes.into()),
                        ("msg", msg.into()),
                    ],
                ));
            }
            TraceEvent::MsgDelivered {
                src,
                dst,
                bytes,
                msg,
                latency_ns,
            } => {
                events.push(instant(
                    rec,
                    src as u64,
                    vec![
                        ("src", src.into()),
                        ("dst", dst.into()),
                        ("bytes", bytes.into()),
                        ("msg", msg.into()),
                        ("latency_ns", latency_ns.into()),
                    ],
                ));
                // The message's lifetime as a duration bar on its source
                // port's row.
                events.push(Json::obj([
                    ("name", Json::str(format!("msg {msg} -> {dst}"))),
                    ("cat", Json::str("message")),
                    ("ph", Json::str("X")),
                    ("ts", Json::Float(us(rec.t_ns.saturating_sub(latency_ns)))),
                    ("dur", Json::Float(latency_ns as f64 / 1e3)),
                    ("pid", Json::UInt(0)),
                    ("tid", Json::UInt(src as u64)),
                    (
                        "args",
                        Json::obj([("bytes", bytes.into()), ("latency_ns", latency_ns.into())]),
                    ),
                ]));
            }
            TraceEvent::ConnRequested { src, dst } => {
                events.push(instant(
                    rec,
                    src as u64,
                    vec![("src", src.into()), ("dst", dst.into())],
                ));
            }
            TraceEvent::ConnEstablished { src, dst, slot_idx } => {
                events.push(instant(
                    rec,
                    src as u64,
                    vec![
                        ("src", src.into()),
                        ("dst", dst.into()),
                        ("slot_idx", slot_idx.into()),
                    ],
                ));
            }
            TraceEvent::ConnEvicted { src, dst, cause } => {
                events.push(instant(
                    rec,
                    src as u64,
                    vec![
                        ("src", src.into()),
                        ("dst", dst.into()),
                        ("cause", Json::str(cause.label())),
                    ],
                ));
            }
            TraceEvent::SlotAdvanced { slot_idx } => {
                events.push(instant(rec, SCHED_TID, vec![("slot_idx", slot_idx.into())]));
            }
            TraceEvent::SchedPass {
                passes,
                ripple_depth,
                established,
                released,
                denied,
            } => {
                events.push(instant(
                    rec,
                    SCHED_TID,
                    vec![
                        ("passes", passes.into()),
                        ("ripple_depth", ripple_depth.into()),
                        ("established", established.into()),
                        ("released", released.into()),
                        ("denied", denied.into()),
                    ],
                ));
            }
            TraceEvent::PreloadApplied {
                slot_idx,
                connections,
            } => {
                events.push(instant(
                    rec,
                    SCHED_TID,
                    vec![
                        ("slot_idx", slot_idx.into()),
                        ("connections", connections.into()),
                    ],
                ));
            }
            TraceEvent::PhaseFlush { cleared } => {
                events.push(instant(rec, SCHED_TID, vec![("cleared", cleared.into())]));
            }
            TraceEvent::FaultInjected {
                fault,
                class,
                src,
                dst,
            }
            | TraceEvent::FaultCleared {
                fault,
                class,
                src,
                dst,
            } => {
                events.push(instant(
                    rec,
                    src as u64,
                    vec![
                        ("fault", fault.into()),
                        ("class", Json::str(class.label())),
                        ("src", src.into()),
                        ("dst", dst.into()),
                    ],
                ));
            }
            TraceEvent::MsgRetried {
                src,
                dst,
                msg,
                attempt,
            } => {
                events.push(instant(
                    rec,
                    src as u64,
                    vec![
                        ("src", src.into()),
                        ("dst", dst.into()),
                        ("msg", msg.into()),
                        ("attempt", attempt.into()),
                    ],
                ));
            }
            TraceEvent::MsgAbandoned {
                src,
                dst,
                msg,
                retries,
            } => {
                events.push(instant(
                    rec,
                    src as u64,
                    vec![
                        ("src", src.into()),
                        ("dst", dst.into()),
                        ("msg", msg.into()),
                        ("retries", retries.into()),
                    ],
                ));
            }
            // Spans render as nested duration events ("B"/"E") named
            // after the phase. Chrome pairs an "E" with the most recent
            // "B" on the same tid, so each message's spans share one row
            // (its phases tile sequentially inside the root and nest
            // correctly) while each connection span — which may overlap
            // others — gets a row of its own.
            TraceEvent::SpanStart {
                span,
                parent,
                phase,
                msg,
                src,
                dst,
            } => {
                events.push(Json::obj([
                    ("name", Json::str(phase.label())),
                    ("cat", Json::str("span")),
                    ("ph", Json::str("B")),
                    ("ts", Json::Float(us(rec.t_ns))),
                    ("pid", Json::UInt(0)),
                    ("tid", Json::UInt(span_tid(span, msg))),
                    (
                        "args",
                        Json::obj([
                            ("span", span.into()),
                            ("parent", parent.into()),
                            ("msg", msg.into()),
                            ("src", src.into()),
                            ("dst", dst.into()),
                        ]),
                    ),
                ]));
            }
            TraceEvent::SpanEnd { span, phase, msg } => {
                events.push(Json::obj([
                    ("name", Json::str(phase.label())),
                    ("cat", Json::str("span")),
                    ("ph", Json::str("E")),
                    ("ts", Json::Float(us(rec.t_ns))),
                    ("pid", Json::UInt(0)),
                    ("tid", Json::UInt(span_tid(span, msg))),
                    (
                        "args",
                        Json::obj([("span", span.into()), ("msg", msg.into())]),
                    ),
                ]));
            }
            // Observability-pipeline records render on the scheduler
            // pseudo-thread; the snapshot keeps only its headline fields
            // (the full payload lives in the JSONL trace).
            TraceEvent::MetricsSnapshot {
                seq,
                delivered,
                bytes,
                denied,
                retries,
                ..
            } => {
                events.push(instant(
                    rec,
                    SCHED_TID,
                    vec![
                        ("seq", seq.into()),
                        ("delivered", delivered.into()),
                        ("bytes", bytes.into()),
                        ("denied", denied.into()),
                        ("retries", retries.into()),
                    ],
                ));
            }
            TraceEvent::AlertRaised {
                rule,
                seq,
                value,
                threshold,
            } => {
                events.push(instant(
                    rec,
                    SCHED_TID,
                    vec![
                        ("rule", rule.into()),
                        ("seq", seq.into()),
                        ("value", value.into()),
                        ("threshold", threshold.into()),
                    ],
                ));
            }
            TraceEvent::AlertCleared { rule, seq } => {
                events.push(instant(
                    rec,
                    SCHED_TID,
                    vec![("rule", rule.into()), ("seq", seq.into())],
                ));
            }
            // Admission-service records render as instants on the source
            // port's row (batch epochs on the scheduler pseudo-thread).
            TraceEvent::RequestEnqueued {
                req,
                tenant,
                src,
                dst,
            } => {
                events.push(instant(
                    rec,
                    src as u64,
                    vec![
                        ("req", req.into()),
                        ("tenant", tenant.into()),
                        ("src", src.into()),
                        ("dst", dst.into()),
                    ],
                ));
            }
            TraceEvent::RequestGranted {
                req,
                tenant,
                src,
                dst,
                wait_ns,
            } => {
                events.push(instant(
                    rec,
                    src as u64,
                    vec![
                        ("req", req.into()),
                        ("tenant", tenant.into()),
                        ("src", src.into()),
                        ("dst", dst.into()),
                        ("wait_ns", wait_ns.into()),
                    ],
                ));
            }
            TraceEvent::RequestRejected {
                req,
                tenant,
                src,
                dst,
                cause,
            } => {
                events.push(instant(
                    rec,
                    src as u64,
                    vec![
                        ("req", req.into()),
                        ("tenant", tenant.into()),
                        ("src", src.into()),
                        ("dst", dst.into()),
                        ("cause", Json::str(cause.label())),
                    ],
                ));
            }
            TraceEvent::BatchAdmitted {
                batch,
                capacity,
                selected,
                granted,
                denied,
                pending,
            } => {
                events.push(instant(
                    rec,
                    SCHED_TID,
                    vec![
                        ("batch", batch.into()),
                        ("capacity", capacity.into()),
                        ("selected", selected.into()),
                        ("granted", granted.into()),
                        ("denied", denied.into()),
                        ("pending", pending.into()),
                    ],
                ));
            }
        }
    }
    Json::Array(events)
}

/// Writes records to `path` as a Chrome trace JSON array.
pub fn write_chrome_trace(path: impl AsRef<Path>, records: &[TraceRecord]) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json(records).render_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EvictCause, FaultClass};

    fn sample_records() -> Vec<TraceRecord> {
        let mk = |t_ns, slot, event| TraceRecord { t_ns, slot, event };
        vec![
            mk(
                0,
                0,
                TraceEvent::MsgInjected {
                    src: 0,
                    dst: 5,
                    bytes: 64,
                    msg: 0,
                },
            ),
            mk(10, 0, TraceEvent::ConnRequested { src: 0, dst: 5 }),
            mk(
                90,
                0,
                TraceEvent::SchedPass {
                    passes: 1,
                    ripple_depth: 1,
                    established: 1,
                    released: 0,
                    denied: 0,
                },
            ),
            mk(
                90,
                0,
                TraceEvent::ConnEstablished {
                    src: 0,
                    dst: 5,
                    slot_idx: 0,
                },
            ),
            mk(100, 1, TraceEvent::SlotAdvanced { slot_idx: 1 }),
            mk(
                120,
                1,
                TraceEvent::PreloadApplied {
                    slot_idx: 2,
                    connections: 8,
                },
            ),
            mk(
                300,
                2,
                TraceEvent::MsgDelivered {
                    src: 0,
                    dst: 5,
                    bytes: 64,
                    msg: 0,
                    latency_ns: 300,
                },
            ),
            mk(
                400,
                2,
                TraceEvent::ConnEvicted {
                    src: 0,
                    dst: 5,
                    cause: EvictCause::Timeout,
                },
            ),
            mk(500, 3, TraceEvent::PhaseFlush { cleared: 4 }),
            mk(
                600,
                3,
                TraceEvent::FaultInjected {
                    fault: 1,
                    class: FaultClass::LinkDown,
                    src: 0,
                    dst: 5,
                },
            ),
            mk(
                650,
                3,
                TraceEvent::MsgRetried {
                    src: 0,
                    dst: 5,
                    msg: 1,
                    attempt: 1,
                },
            ),
            mk(
                700,
                3,
                TraceEvent::MsgAbandoned {
                    src: 0,
                    dst: 5,
                    msg: 1,
                    retries: 3,
                },
            ),
            mk(
                800,
                4,
                TraceEvent::FaultCleared {
                    fault: 1,
                    class: FaultClass::LinkDown,
                    src: 0,
                    dst: 5,
                },
            ),
            mk(
                900,
                4,
                TraceEvent::SpanStart {
                    span: 1,
                    parent: u32::MAX,
                    phase: crate::event::SpanPhase::Msg,
                    msg: 0,
                    src: 0,
                    dst: 5,
                },
            ),
            mk(
                950,
                4,
                TraceEvent::SpanEnd {
                    span: 1,
                    phase: crate::event::SpanPhase::Msg,
                    msg: 0,
                },
            ),
            mk(
                1000,
                5,
                TraceEvent::MetricsSnapshot {
                    seq: 0,
                    delivered: 1,
                    bytes: 64,
                    established: 1,
                    evicted: 1,
                    denied: 0,
                    retries: 1,
                    abandoned: 1,
                    faults_injected: 1,
                    faults_cleared: 1,
                    setups: 1,
                    setup_total_ns: 80,
                    setup_max_ns: 80,
                    passes: 1,
                    enqueued: 1,
                    granted: 1,
                    rejected: 0,
                    batches: 1,
                },
            ),
            mk(
                1000,
                5,
                TraceEvent::AlertRaised {
                    rule: 0,
                    seq: 0,
                    value: 1,
                    threshold: 1,
                },
            ),
            mk(2000, 6, TraceEvent::AlertCleared { rule: 0, seq: 1 }),
        ]
    }

    #[test]
    fn every_kind_appears_in_the_export() {
        let json = chrome_trace_json(&sample_records());
        let Json::Array(events) = &json else {
            panic!("chrome trace must be a JSON array")
        };
        // 16 instants + 1 duration bar for the delivery + a span B/E pair.
        assert_eq!(events.len(), 19);
        let rendered = json.render();
        assert!(rendered.contains(r#""ph":"B""#), "span begin missing");
        assert!(rendered.contains(r#""ph":"E""#), "span end missing");
        for kind in [
            "msg-injected",
            "msg-delivered",
            "conn-requested",
            "conn-established",
            "conn-evicted",
            "slot-advanced",
            "sched-pass",
            "preload-applied",
            "phase-flush",
            "fault-injected",
            "fault-cleared",
            "msg-retried",
            "msg-abandoned",
            "metrics-snapshot",
            "alert-raised",
            "alert-cleared",
        ] {
            assert!(rendered.contains(kind), "missing event kind {kind}");
        }
    }

    #[test]
    fn timestamps_are_microseconds() {
        let json = chrome_trace_json(&sample_records());
        let rendered = json.render();
        // 90 ns -> 0.09 us.
        assert!(rendered.contains(r#""ts":0.09"#), "{rendered}");
    }

    #[test]
    fn delivery_emits_a_duration_bar() {
        let rendered = chrome_trace_json(&sample_records()).render();
        assert!(rendered.contains(r#""ph":"X""#));
        assert!(rendered.contains(r#""dur":0.3"#));
    }

    #[test]
    fn export_writes_a_loadable_file() {
        let path = std::env::temp_dir().join("pms-trace-chrome-test.json");
        write_chrome_trace(&path, &sample_records()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        std::fs::remove_file(&path).ok();
    }
}
