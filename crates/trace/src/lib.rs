//! Observability for the PMS simulator stack: typed trace events, sinks,
//! a metrics registry, and Chrome-trace/JSONL export.
//!
//! The paper's evaluation (§5) turns on *why* a switching paradigm wins —
//! working-set hits, SL scheduling passes, predictor evictions — which an
//! aggregate like `SimStats` cannot explain after the fact. This crate
//! provides the timeline: every simulator emits [`TraceEvent`]s stamped
//! with simulation time and the active TDM slot, a [`Tracer`] sink
//! collects (or drops) them, and [`chrome`] renders the result so it can
//! be loaded straight into `chrome://tracing` / Perfetto.
//!
//! Design rules:
//!
//! * **Zero overhead when off** — [`Tracer::Null`] is a single
//!   always-false [`Tracer::enabled`] check at every emit site; callers
//!   guard event construction behind it, so the hot loops do no
//!   formatting, no allocation, and no writes.
//! * **No floats, no strings on the hot path** — events are plain
//!   integer structs; [`metrics::Histogram`] uses log2 buckets.
//! * **Zero dependencies** — including JSON: [`json`] is a small
//!   hand-rolled value tree + renderer (the build environment has no
//!   registry access, and a trace writer has no business pulling one in).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alerts;
pub mod chrome;
pub mod event;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod prof;
pub mod shard;
pub mod sink;
pub mod span;
pub mod timeseries;

pub use alerts::{replay_alerts, AlertEngine, AlertRule, AlertRules, RulesParseError};
pub use chrome::{chrome_trace_json, write_chrome_trace};
pub use event::{EvictCause, FaultClass, RejectCause, SpanPhase, TraceEvent, TraceRecord};
pub use flight::{parse_flight_dump, FlightConfig, FlightParseError, FlightRecorder};
pub use json::{Json, ParseError};
pub use metrics::{prometheus_name, Histogram, MetricsRegistry, PROMETHEUS_CONTENT_TYPE};
pub use prof::{KernelSnapshot, ProfKernel, ProfScope};
pub use shard::{merge_by_key, merge_records};
pub use sink::{
    record_json, write_jsonl, JsonlTracer, NullTracer, PipelineTracer, RingTracer, SharedTracer,
    TraceSink, Tracer, VecTracer,
};
pub use span::{SpanTracker, NO_MSG, NO_PARENT};
pub use timeseries::{
    series_from_records, series_to_csv, Snapshot, SnapshotCollector, SnapshotConfig,
    DEFAULT_WINDOW_SLOTS,
};
