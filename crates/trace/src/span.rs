//! Causal span emission: one well-formed span tree per message.
//!
//! The simulators do not emit [`SpanStart`]/[`SpanEnd`] events directly —
//! they drive a [`SpanTracker`], which enforces the lifecycle structure by
//! construction:
//!
//! * every message gets a root [`SpanPhase::Msg`] span plus the four
//!   phase children `arrival → admit → align → transfer`, which **tile**
//!   the root exactly (phases the paradigm skips are emitted zero-length
//!   rather than omitted, so per-phase durations always sum to the
//!   end-to-end latency);
//! * phases only move forward (a retry keeps its message in `transfer`);
//! * every span is closed exactly once, at a time no earlier than its
//!   start — [`SpanTracker::finish`] closes whatever a run left open
//!   (in-flight messages, cached connections) at the final timestamp.
//!
//! Span ids are deterministic functions of the message id (no global
//! counters shared across runs), so a traced run replays byte-identical:
//! message `m` owns ids `6m+1 .. 6m+6` and connection spans take
//! [`CONN_SPAN_BIT`]` | n` in establishment order.
//!
//! [`SpanStart`]: crate::TraceEvent::SpanStart
//! [`SpanEnd`]: crate::TraceEvent::SpanEnd

use crate::event::{SpanPhase, TraceEvent};
use crate::sink::Tracer;
use std::collections::HashMap;

/// `parent` value of a root span (no parent).
pub const NO_PARENT: u32 = u32::MAX;

/// `msg` value of a span not tied to a message (connection spans).
pub const NO_MSG: u32 = u32::MAX;

/// High bit marking connection-span ids (message ids stay well below).
pub const CONN_SPAN_BIT: u32 = 0x8000_0000;

/// The message phases in lifecycle order (children of the root span).
const MSG_PHASES: [SpanPhase; 4] = [
    SpanPhase::Arrival,
    SpanPhase::Admit,
    SpanPhase::Align,
    SpanPhase::Transfer,
];

/// Root span id of message `msg`.
pub fn msg_span(msg: u32) -> u32 {
    msg * 6 + 1
}

/// Span id of message `msg`'s phase child `phase` (one of
/// `arrival/admit/align/transfer`), or of its `route` marker.
pub fn phase_span(msg: u32, phase: SpanPhase) -> u32 {
    let off = match phase {
        SpanPhase::Msg => 0,
        SpanPhase::Arrival => 1,
        SpanPhase::Admit => 2,
        SpanPhase::Align => 3,
        SpanPhase::Transfer => 4,
        SpanPhase::Route => 5,
        SpanPhase::Conn => panic!("conn spans are not message-keyed"),
    };
    msg * 6 + 1 + off
}

/// Per-message state: which phase child is currently open, plus the
/// endpoints (needed to self-describe every span record).
#[derive(Debug, Clone, Copy)]
struct OpenMsg {
    phase_idx: usize,
    src: u32,
    dst: u32,
    /// Latest timestamp emitted for this message; later emissions clamp
    /// to it so retries and lazily-processed fault transitions (whose
    /// transition times can predate the caller's clock) never produce a
    /// phase end earlier than its start.
    last_t: u64,
    /// Whether the zero-length `route` marker was already emitted; a
    /// fault retry re-admits a route but the message owns only one
    /// `route` span id, so only the first admission is marked.
    routed: bool,
}

/// Emits well-formed span trees on behalf of a simulator.
///
/// All methods early-return when the tracer is disabled, so a `Null`
/// tracer costs one predicted branch per call site and the tracker
/// accumulates no state.
#[derive(Debug, Default)]
pub struct SpanTracker {
    open_msgs: HashMap<u32, OpenMsg>,
    /// Open connection spans: pair -> (span id, start time). The start
    /// time clamps `conn_end`, which faults can invoke with transition
    /// timestamps earlier than the (lazily processed) establishment.
    open_conns: HashMap<(u32, u32), (u32, u64)>,
    next_conn: u32,
    /// Latest timestamp any span event carried; [`finish`](Self::finish)
    /// clamps to it so closing events never precede their opens (delivery
    /// timestamps include path latency and can outrun the caller's clock).
    high_water: u64,
}

impl SpanTracker {
    /// A tracker with no open spans.
    pub fn new() -> Self {
        SpanTracker::default()
    }

    /// Opens message `msg`'s root span and its `arrival` phase. Must be
    /// called once per message, at injection time.
    pub fn msg_start(
        &mut self,
        tracer: &mut Tracer,
        t_ns: u64,
        slot: u32,
        msg: u32,
        src: u32,
        dst: u32,
    ) {
        if !tracer.enabled() {
            return;
        }
        debug_assert!(
            !self.open_msgs.contains_key(&msg),
            "message {msg} started twice"
        );
        self.high_water = self.high_water.max(t_ns);
        tracer.emit(
            t_ns,
            slot,
            TraceEvent::SpanStart {
                span: msg_span(msg),
                parent: NO_PARENT,
                phase: SpanPhase::Msg,
                msg,
                src,
                dst,
            },
        );
        tracer.emit(
            t_ns,
            slot,
            TraceEvent::SpanStart {
                span: phase_span(msg, SpanPhase::Arrival),
                parent: msg_span(msg),
                phase: SpanPhase::Arrival,
                msg,
                src,
                dst,
            },
        );
        self.open_msgs.insert(
            msg,
            OpenMsg {
                phase_idx: 0,
                src,
                dst,
                last_t: t_ns,
                routed: false,
            },
        );
    }

    /// Advances message `msg` to `phase` (one of
    /// `admit`/`align`/`transfer`): closes the open phase at `t_ns`,
    /// emitting zero-length spans for any phases in between. Idempotent —
    /// a message never moves backward, so calling with the current (or an
    /// earlier) phase is a no-op.
    pub fn msg_advance(
        &mut self,
        tracer: &mut Tracer,
        t_ns: u64,
        slot: u32,
        msg: u32,
        phase: SpanPhase,
    ) {
        if !tracer.enabled() {
            return;
        }
        let Some(open) = self.open_msgs.get_mut(&msg) else {
            return;
        };
        let t_ns = t_ns.max(open.last_t);
        open.last_t = t_ns;
        self.high_water = self.high_water.max(t_ns);
        let target = MSG_PHASES
            .iter()
            .position(|&p| p == phase)
            .expect("msg_advance takes a message phase");
        if target <= open.phase_idx {
            return;
        }
        let (src, dst) = (open.src, open.dst);
        let mut idx = open.phase_idx;
        open.phase_idx = target;
        while idx < target {
            tracer.emit(
                t_ns,
                slot,
                TraceEvent::SpanEnd {
                    span: phase_span(msg, MSG_PHASES[idx]),
                    phase: MSG_PHASES[idx],
                    msg,
                },
            );
            idx += 1;
            tracer.emit(
                t_ns,
                slot,
                TraceEvent::SpanStart {
                    span: phase_span(msg, MSG_PHASES[idx]),
                    parent: msg_span(msg),
                    phase: MSG_PHASES[idx],
                    msg,
                    src,
                    dst,
                },
            );
        }
    }

    /// Emits the zero-length `route` marker: the multistage fabric
    /// admitted a path for message `msg`'s connection. A child of the
    /// `admit` phase. Only the first admission is marked — a fault retry
    /// re-admits, but the message owns a single `route` span id.
    pub fn route_admitted(&mut self, tracer: &mut Tracer, t_ns: u64, slot: u32, msg: u32) {
        if !tracer.enabled() {
            return;
        }
        let Some(open) = self.open_msgs.get_mut(&msg) else {
            return;
        };
        if open.routed {
            return;
        }
        open.routed = true;
        let open = &*open;
        let t_ns = t_ns.max(open.last_t);
        self.high_water = self.high_water.max(t_ns);
        let span = phase_span(msg, SpanPhase::Route);
        tracer.emit(
            t_ns,
            slot,
            TraceEvent::SpanStart {
                span,
                parent: phase_span(msg, SpanPhase::Admit),
                phase: SpanPhase::Route,
                msg,
                src: open.src,
                dst: open.dst,
            },
        );
        tracer.emit(
            t_ns,
            slot,
            TraceEvent::SpanEnd {
                span,
                phase: SpanPhase::Route,
                msg,
            },
        );
    }

    /// Closes message `msg`'s span tree at `t_ns` (delivery or
    /// abandonment): fast-forwards through any remaining phases
    /// (zero-length) and ends the `transfer` child plus the root.
    pub fn msg_end(&mut self, tracer: &mut Tracer, t_ns: u64, slot: u32, msg: u32) {
        if !tracer.enabled() {
            return;
        }
        self.msg_advance(tracer, t_ns, slot, msg, SpanPhase::Transfer);
        let Some(open) = self.open_msgs.remove(&msg) else {
            return;
        };
        let t_ns = t_ns.max(open.last_t);
        self.high_water = self.high_water.max(t_ns);
        debug_assert_eq!(open.phase_idx, MSG_PHASES.len() - 1);
        tracer.emit(
            t_ns,
            slot,
            TraceEvent::SpanEnd {
                span: phase_span(msg, SpanPhase::Transfer),
                phase: SpanPhase::Transfer,
                msg,
            },
        );
        tracer.emit(
            t_ns,
            slot,
            TraceEvent::SpanEnd {
                span: msg_span(msg),
                phase: SpanPhase::Msg,
                msg,
            },
        );
    }

    /// Opens a connection-lifetime span for `src -> dst` (at
    /// establishment). A no-op if one is already open for the pair.
    pub fn conn_start(&mut self, tracer: &mut Tracer, t_ns: u64, slot: u32, src: u32, dst: u32) {
        if !tracer.enabled() || self.open_conns.contains_key(&(src, dst)) {
            return;
        }
        self.high_water = self.high_water.max(t_ns);
        let span = CONN_SPAN_BIT | self.next_conn;
        self.next_conn += 1;
        self.open_conns.insert((src, dst), (span, t_ns));
        tracer.emit(
            t_ns,
            slot,
            TraceEvent::SpanStart {
                span,
                parent: NO_PARENT,
                phase: SpanPhase::Conn,
                msg: NO_MSG,
                src,
                dst,
            },
        );
    }

    /// Closes the connection-lifetime span for `src -> dst` (at
    /// eviction). A no-op if none is open. The end time clamps to the
    /// span's start: fault transitions are processed lazily, so their
    /// timestamps can predate the establishment they tear down.
    pub fn conn_end(&mut self, tracer: &mut Tracer, t_ns: u64, slot: u32, src: u32, dst: u32) {
        if !tracer.enabled() {
            return;
        }
        if let Some((span, started)) = self.open_conns.remove(&(src, dst)) {
            let t_ns = t_ns.max(started);
            self.high_water = self.high_water.max(t_ns);
            tracer.emit(
                t_ns,
                slot,
                TraceEvent::SpanEnd {
                    span,
                    phase: SpanPhase::Conn,
                    msg: NO_MSG,
                },
            );
        }
    }

    /// Closes every span still open at the end of a run (in-flight
    /// messages, cached connections) at `t_ns`, in deterministic order.
    pub fn finish(&mut self, tracer: &mut Tracer, t_ns: u64, slot: u32) {
        if !tracer.enabled() {
            return;
        }
        let t_ns = t_ns.max(self.high_water);
        let mut msgs: Vec<u32> = self.open_msgs.keys().copied().collect();
        msgs.sort_unstable();
        for msg in msgs {
            self.msg_end(tracer, t_ns, slot, msg);
        }
        let mut conns: Vec<(u32, u32)> = self.open_conns.keys().copied().collect();
        conns.sort_unstable();
        for (src, dst) in conns {
            self.conn_end(tracer, t_ns, slot, src, dst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceRecord;
    use std::collections::HashMap as Map;

    /// Pairing invariant over a record stream: every start closed exactly
    /// once, never before it opened. Returns span count.
    fn check_pairing(records: &[TraceRecord]) -> usize {
        let mut open: Map<u32, u64> = Map::new();
        let mut closed = 0usize;
        for rec in records {
            match rec.event {
                TraceEvent::SpanStart { span, .. } => {
                    assert!(
                        open.insert(span, rec.t_ns).is_none(),
                        "span {span} reopened"
                    );
                }
                TraceEvent::SpanEnd { span, .. } => {
                    let start = open.remove(&span).expect("end without start");
                    assert!(rec.t_ns >= start, "span {span} ends before it starts");
                    closed += 1;
                }
                _ => {}
            }
        }
        assert!(open.is_empty(), "unclosed spans: {open:?}");
        closed
    }

    /// Per-message tiling: phase durations sum to the root duration.
    fn check_tiling(records: &[TraceRecord], msg: u32) {
        let mut starts: Map<u32, u64> = Map::new();
        let mut durs: Map<u32, u64> = Map::new();
        for rec in records {
            match rec.event {
                TraceEvent::SpanStart { span, .. } => {
                    starts.insert(span, rec.t_ns);
                }
                TraceEvent::SpanEnd { span, .. } => {
                    durs.insert(span, rec.t_ns - starts[&span]);
                }
                _ => {}
            }
        }
        let total: u64 = MSG_PHASES.iter().map(|&p| durs[&phase_span(msg, p)]).sum();
        assert_eq!(total, durs[&msg_span(msg)], "phases must tile the root");
    }

    #[test]
    fn full_lifecycle_tiles_exactly() {
        let mut tracer = Tracer::vec();
        let mut spans = SpanTracker::new();
        spans.msg_start(&mut tracer, 0, 0, 7, 1, 2);
        spans.msg_advance(&mut tracer, 80, 0, 7, SpanPhase::Admit);
        spans.route_admitted(&mut tracer, 160, 1, 7);
        spans.msg_advance(&mut tracer, 160, 1, 7, SpanPhase::Align);
        spans.msg_advance(&mut tracer, 200, 2, 7, SpanPhase::Transfer);
        spans.msg_end(&mut tracer, 500, 0, 7);
        let records = tracer.records();
        assert_eq!(check_pairing(&records), 6, "root + 4 phases + route");
        check_tiling(&records, 7);
    }

    #[test]
    fn skipped_phases_are_zero_length_not_missing() {
        let mut tracer = Tracer::vec();
        let mut spans = SpanTracker::new();
        spans.msg_start(&mut tracer, 10, 0, 0, 0, 1);
        // Jump straight to transfer: admit and align emitted zero-length.
        spans.msg_advance(&mut tracer, 90, 0, 0, SpanPhase::Transfer);
        spans.msg_end(&mut tracer, 300, 0, 0);
        let records = tracer.records();
        check_pairing(&records);
        check_tiling(&records, 0);
        let kinds = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::SpanStart { .. }))
            .count();
        assert_eq!(kinds, 5, "root + all four phases present");
    }

    #[test]
    fn advance_is_monotone_and_idempotent() {
        let mut tracer = Tracer::vec();
        let mut spans = SpanTracker::new();
        spans.msg_start(&mut tracer, 0, 0, 3, 0, 1);
        spans.msg_advance(&mut tracer, 50, 0, 3, SpanPhase::Transfer);
        let before = tracer.records().len();
        // Re-advancing to the same or an earlier phase changes nothing.
        spans.msg_advance(&mut tracer, 60, 0, 3, SpanPhase::Transfer);
        spans.msg_advance(&mut tracer, 60, 0, 3, SpanPhase::Admit);
        assert_eq!(tracer.records().len(), before);
        spans.msg_end(&mut tracer, 100, 0, 3);
        check_pairing(&tracer.records());
    }

    #[test]
    fn finish_closes_everything_open() {
        let mut tracer = Tracer::vec();
        let mut spans = SpanTracker::new();
        spans.msg_start(&mut tracer, 0, 0, 0, 0, 1);
        spans.msg_start(&mut tracer, 5, 0, 1, 2, 3);
        spans.msg_advance(&mut tracer, 80, 0, 1, SpanPhase::Admit);
        spans.conn_start(&mut tracer, 80, 0, 2, 3);
        spans.msg_end(&mut tracer, 200, 0, 1);
        spans.finish(&mut tracer, 1_000, 0);
        let records = tracer.records();
        check_pairing(&records);
        check_tiling(&records, 0);
        check_tiling(&records, 1);
    }

    #[test]
    fn conn_spans_pair_and_get_distinct_ids() {
        let mut tracer = Tracer::vec();
        let mut spans = SpanTracker::new();
        spans.conn_start(&mut tracer, 0, 0, 0, 1);
        spans.conn_start(&mut tracer, 0, 0, 2, 3);
        spans.conn_start(&mut tracer, 1, 0, 0, 1); // duplicate: no-op
        spans.conn_end(&mut tracer, 100, 0, 0, 1);
        spans.conn_end(&mut tracer, 150, 0, 2, 3);
        spans.conn_end(&mut tracer, 160, 0, 5, 6); // never opened: no-op
        let records = tracer.records();
        assert_eq!(check_pairing(&records), 2);
        let ids: Vec<u32> = records
            .iter()
            .filter_map(|r| match r.event {
                TraceEvent::SpanStart { span, .. } => Some(span),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![CONN_SPAN_BIT, CONN_SPAN_BIT | 1]);
    }

    #[test]
    fn null_tracer_accumulates_no_state() {
        let mut tracer = Tracer::Null;
        let mut spans = SpanTracker::new();
        spans.msg_start(&mut tracer, 0, 0, 0, 0, 1);
        spans.conn_start(&mut tracer, 0, 0, 0, 1);
        assert!(spans.open_msgs.is_empty() && spans.open_conns.is_empty());
    }
}
