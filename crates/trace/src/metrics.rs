//! Metrics: named counters and log2-bucket histograms.
//!
//! The hot path is integer-only: recording a latency is a `leading_zeros`
//! plus an array increment, and counters are plain `u64` adds addressed
//! by pre-registered handles (no string hashing per event).

use crate::json::Json;

/// Number of histogram buckets: bucket `i` holds values whose bit length
/// is `i`, i.e. `[2^(i-1), 2^i)` for `i >= 1` and `{0}` for bucket 0.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` samples.
///
/// Quantiles are answered by nearest-rank over the buckets, returning the
/// geometric midpoint of the selected bucket — at most a 2x relative
/// error, which is exactly the trade documented on
/// [`SimStats::latency_quantile_ns`](../pms_sim) for large runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Bucket index for a value: its bit length.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample. Integer-only; never allocates.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile approximated from the buckets.
    ///
    /// Returns the geometric midpoint of the bucket holding the rank,
    /// clamped to the observed `[min, max]`.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0;
        }
        // Nearest-rank: the smallest value whose cumulative count reaches
        // ceil(q * count), with rank at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = bucket_midpoint(i);
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(bucket_upper_bound_inclusive, cumulative
    /// count)` pairs — the shape Prometheus histogram `le` series want.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            // Bucket i holds [2^(i-1), 2^i), so the inclusive upper
            // bound is 2^i - 1 (and bucket 0 holds exactly {0}).
            let upper = match i {
                0 => 0,
                64 => u64::MAX,
                _ => (1u64 << i) - 1,
            };
            out.push((upper, cum));
        }
        out
    }

    /// Non-empty buckets as `(bucket_lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_lower_bound(i), n))
            .collect()
    }

    /// JSON summary of the histogram.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", self.count.into()),
            ("sum", self.sum.into()),
            ("min", self.min().into()),
            ("max", self.max.into()),
            ("mean", self.mean().into()),
            (
                "buckets",
                Json::Array(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(lo, n)| Json::Array(vec![lo.into(), n.into()]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Geometric midpoint of bucket `i` (integer approximation).
fn bucket_midpoint(i: usize) -> u64 {
    match i {
        0 => 0,
        1 => 1,
        // [2^(i-1), 2^i): midpoint 1.5 * 2^(i-1) = 3 * 2^(i-2).
        _ => 3u64 << (i - 2),
    }
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A registry of named counters and histograms.
///
/// Names are resolved once at registration; the hot path works through
/// integer handles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or finds) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        self.histograms.push((name.to_string(), Histogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].1 += delta;
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Sets a counter to an absolute value (for importing aggregates).
    pub fn set(&mut self, id: CounterId, value: u64) {
        self.counters[id.0].1 = value;
    }

    /// Records a histogram sample.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].1.record(value);
    }

    /// Reads a counter by name, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Reads a histogram by name, if registered.
    pub fn histogram_values(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// All counters in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4), with every series carrying the given label set.
    ///
    /// Dotted registry names become `pms_`-prefixed underscore names
    /// (`sim.delivered_messages` → `pms_sim_delivered_messages`), all
    /// counters render as `counter`, and log2 histograms render as
    /// cumulative `le` bucket series (inclusive upper bound of each
    /// non-empty bucket) plus `_sum`/`_count`. Deterministic: series
    /// appear in registration order, labels in the given order.
    pub fn to_prometheus(&self, labels: &[(&str, String)]) -> String {
        let label_str = render_labels(labels);
        let mut out = String::new();
        for (name, value) in &self.counters {
            let pname = prometheus_name(name);
            out.push_str(&format!("# TYPE {pname} counter\n"));
            out.push_str(&format!("{pname}{label_str} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let pname = prometheus_name(name);
            out.push_str(&format!("# TYPE {pname} histogram\n"));
            for (le, cum) in h.cumulative_buckets() {
                out.push_str(&format!(
                    "{pname}_bucket{} {cum}\n",
                    render_labels_with(labels, "le", &le.to_string())
                ));
            }
            out.push_str(&format!(
                "{pname}_bucket{} {}\n",
                render_labels_with(labels, "le", "+Inf"),
                h.count()
            ));
            out.push_str(&format!("{pname}_sum{label_str} {}\n", h.sum()));
            out.push_str(&format!("{pname}_count{label_str} {}\n", h.count()));
        }
        out
    }

    /// JSON object with a `counters` map and a `histograms` map.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Object(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Object(
                    self.histograms
                        .iter()
                        .map(|(n, h)| (n.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The Prometheus content type the text exposition format declares.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Maps a dotted registry name onto a valid Prometheus metric name:
/// `pms_` prefix, every non-`[a-zA-Z0-9_:]` byte replaced by `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("pms_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the text format (backslash, quote, newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(&str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn render_labels_with(labels: &[(&str, String)], extra_key: &str, extra_val: &str) -> String {
    let mut body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    body.push(format!("{extra_key}=\"{}\"", escape_label(extra_val)));
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        for v in [5u64, 100, 3, 77] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 185);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 46.25).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantiles_are_within_a_bucket() {
        let mut h = Histogram::new();
        // 1000 samples at exactly 600 ns: any quantile must come back in
        // 600's bucket [512, 1024), clamped to [600, 600].
        for _ in 0..1000 {
            h.record(600);
        }
        assert_eq!(h.quantile(0.0), 600);
        assert_eq!(h.quantile(0.5), 600);
        assert_eq!(h.quantile(1.0), 600);
    }

    #[test]
    fn quantiles_order_buckets_correctly() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 < 16, "p50 = {p50} should sit in 10's bucket");
        assert!(p99 >= 524_288, "p99 = {p99} should sit in 1e6's bucket");
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_range_is_enforced() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn registry_counters_and_histograms() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("sched.passes");
        let c2 = reg.counter("sched.passes");
        assert_eq!(c, c2, "same name must return the same handle");
        reg.inc(c);
        reg.add(c, 4);
        assert_eq!(reg.counter_value("sched.passes"), Some(5));
        assert_eq!(reg.counter_value("missing"), None);

        let h = reg.histogram("latency_ns");
        reg.observe(h, 300);
        reg.observe(h, 700);
        assert_eq!(reg.histogram_values("latency_ns").unwrap().count(), 2);

        let js = reg.to_json().render();
        assert!(js.contains(r#""sched.passes":5"#), "{js}");
        assert!(js.contains(r#""latency_ns""#));
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(
            prometheus_name("sim.delivered_messages"),
            "pms_sim_delivered_messages"
        );
        assert_eq!(
            prometheus_name("prof.sl_pass.calls"),
            "pms_prof_sl_pass_calls"
        );
    }

    #[test]
    fn cumulative_buckets_accumulate() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(3);
        h.record(3);
        h.record(600);
        let cum = h.cumulative_buckets();
        // {0} -> 1, [2,4) -> 3 cumulative, [512,1024) -> 4 cumulative.
        assert_eq!(cum, vec![(0, 1), (3, 3), (1023, 4)]);
    }

    #[test]
    fn prometheus_text_renders_counters_and_histograms() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("sim.delivered_messages");
        reg.add(c, 7);
        let h = reg.histogram("sim.latency_ns");
        reg.observe(h, 600);
        reg.observe(h, 700);
        let labels = [
            ("paradigm", "dynamic".to_string()),
            ("ports", "128".to_string()),
            ("k", "4".to_string()),
        ];
        let text = reg.to_prometheus(&labels);
        assert!(
            text.contains("# TYPE pms_sim_delivered_messages counter"),
            "{text}"
        );
        assert!(
            text.contains(
                "pms_sim_delivered_messages{paradigm=\"dynamic\",ports=\"128\",k=\"4\"} 7"
            ),
            "{text}"
        );
        assert!(
            text.contains("# TYPE pms_sim_latency_ns histogram"),
            "{text}"
        );
        assert!(
            text.contains(
                "pms_sim_latency_ns_bucket{paradigm=\"dynamic\",ports=\"128\",k=\"4\",le=\"1023\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "pms_sim_latency_ns_bucket{paradigm=\"dynamic\",ports=\"128\",k=\"4\",le=\"+Inf\"} 2"
            ),
            "{text}"
        );
        assert!(text.contains("pms_sim_latency_ns_sum"), "{text}");
        assert!(
            text.ends_with('\n') && !text.contains("\n\n"),
            "clean line-oriented output: {text:?}"
        );
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("x");
        reg.inc(c);
        let labels = [("weird", "a\"b\\c".to_string())];
        let text = reg.to_prometheus(&labels);
        assert!(text.contains("pms_x{weird=\"a\\\"b\\\\c\"} 1"), "{text}");
    }

    #[test]
    fn prometheus_without_labels_has_no_braces() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("plain");
        reg.add(c, 3);
        let text = reg.to_prometheus(&[]);
        assert!(text.contains("pms_plain 3\n"), "{text}");
    }
}
