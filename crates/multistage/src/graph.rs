//! The stage graph: a pipeline of crossbar stages joined by inter-stage
//! link maps.
//!
//! A [`StageGraph`] generalizes the fabrics in `pms-fabric` to a common
//! resource model: `S` switching stages separated by `S + 1` *layers* of
//! lines. Layer `0` is the input ports, layer `S` the output ports, and
//! the inner layers are the fabric's internal lines. Stage `s` is a
//! crossbar over lines whose connectivity is restricted by a *reach
//! matrix* — `reach[s][a][b] = 1` iff some switching element of stage `s`
//! can connect line `a` of layer `s` to line `b` of layer `s + 1`. A
//! connection occupies exactly one line per layer, so a set of
//! connections is realizable iff each can be threaded through the graph
//! without sharing a line — which is precisely the per-stage
//! partial-permutation constraint the scheduler already enforces on the
//! single crossbar.
//!
//! All layers share one padded width `W` (the largest layer); lines past
//! a layer's real population simply have empty reach rows/columns.

use pms_bitmat::BitMatrix;

/// A directed graph of crossbar stages with inter-stage link maps.
#[derive(Debug, Clone)]
pub struct StageGraph {
    ports: usize,
    width: usize,
    reach: Vec<BitMatrix>,
    name: String,
}

impl StageGraph {
    /// Builds a stage graph from explicit reach matrices.
    ///
    /// # Panics
    /// Panics if `reach` is empty, any matrix is not `width x width`, or
    /// `ports > width`.
    pub fn new(ports: usize, width: usize, reach: Vec<BitMatrix>, name: impl Into<String>) -> Self {
        assert!(ports > 0, "stage graph needs at least one port");
        assert!(ports <= width, "layer width must cover the ports");
        assert!(!reach.is_empty(), "stage graph needs at least one stage");
        for (s, m) in reach.iter().enumerate() {
            assert_eq!(
                (m.rows(), m.cols()),
                (width, width),
                "stage {s} reach matrix is not {width}x{width}"
            );
        }
        Self {
            ports,
            width,
            reach,
            name: name.into(),
        }
    }

    /// Number of external ports `N` (layer 0 and the last layer).
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Padded line count shared by every layer.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of switching stages `S`.
    pub fn num_stages(&self) -> usize {
        self.reach.len()
    }

    /// The reach matrix of stage `s`.
    pub fn reach(&self, s: usize) -> &BitMatrix {
        &self.reach[s]
    }

    /// Topology label for reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The degenerate one-stage graph: a full `n x n` crossbar. Any
    /// partial permutation threads through it, so per-stage scheduling on
    /// this graph must agree exactly with the plain scheduler.
    pub fn crossbar(n: usize) -> Self {
        let mut full = BitMatrix::square(n);
        for u in 0..n {
            for v in 0..n {
                full.set(u, v, true);
            }
        }
        Self::new(n, n, vec![full], "crossbar")
    }

    /// An `N = 2^k` Omega network: `k` identical stages of 2x2 elements
    /// joined by perfect shuffles. From line `a`, stage `s` reaches lines
    /// `2a mod N` and `(2a + 1) mod N` — the shuffle rotates the address
    /// left and the element forces the low bit. Mirrors
    /// `pms_fabric::OmegaNetwork::path` exactly, so the unique `u -> v`
    /// path occupies the same line sequence.
    ///
    /// # Panics
    /// Panics unless `n` is a power of two and at least 2.
    pub fn omega(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "omega stage graph needs a power-of-two port count >= 2, got {n}"
        );
        let k = n.trailing_zeros() as usize;
        let mut stage = BitMatrix::square(n);
        for a in 0..n {
            stage.set(a, (2 * a) % n, true);
            stage.set(a, (2 * a + 1) % n, true);
        }
        Self::new(n, n, vec![stage; k], "omega")
    }

    /// An `N = 2^k` butterfly: stage `s` lets a line keep its index or
    /// flip address bit `k - 1 - s` (straight or cross through a 2x2
    /// element). Like the Omega network it has a unique path per pair,
    /// but the inter-stage wiring differs, so a different set of
    /// permutations blocks.
    ///
    /// # Panics
    /// Panics unless `n` is a power of two and at least 2.
    pub fn butterfly(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "butterfly stage graph needs a power-of-two port count >= 2, got {n}"
        );
        let k = n.trailing_zeros() as usize;
        let reach = (0..k)
            .map(|s| {
                let bit = 1usize << (k - 1 - s);
                let mut stage = BitMatrix::square(n);
                for a in 0..n {
                    stage.set(a, a, true);
                    stage.set(a, a ^ bit, true);
                }
                stage
            })
            .collect();
        Self::new(n, n, reach, "butterfly")
    }

    /// A two-level folded Clos over `n` hosts: leaves of `arity` ports,
    /// `uplinks` up-links per leaf, and a consolidated non-blocking spine
    /// (any up-link reaches any down-link). Three stages:
    ///
    /// * stage 0 (leaf, upward): host `u` enters either the *local* line
    ///   of a destination in its own leaf, or one of its leaf's up-links;
    /// * stage 1 (spine): local lines pass straight through; up-links
    ///   connect to down-links of any leaf;
    /// * stage 2 (leaf, downward): the local line of `v` and every
    ///   down-link of `v`'s leaf exit at host `v`.
    ///
    /// Inner layers use lines `0..n` for per-destination local traffic
    /// and lines `n..n + leaves * uplinks` for up-links (layer 1) /
    /// down-links (layer 2). Because up-links of a leaf are
    /// interchangeable, greedy per-connection routing on this graph
    /// admits a configuration iff `pms_fabric::FatTree::is_valid` accepts
    /// it: each cross-leaf connection needs one free up-link at the
    /// source leaf and one free down-link at the destination leaf, and
    /// intra-leaf traffic rides its free local line.
    ///
    /// # Panics
    /// Panics unless `arity` divides `n` and `uplinks >= 1`.
    pub fn fat_tree(n: usize, arity: usize, uplinks: usize) -> Self {
        assert!(arity >= 1 && n >= arity, "bad fat-tree geometry");
        assert!(
            n.is_multiple_of(arity),
            "arity {arity} must divide port count {n}"
        );
        assert!(uplinks >= 1, "need at least one up-link per leaf");
        let leaves = n / arity;
        let width = n + leaves * uplinks;
        let leaf_of = |p: usize| p / arity;
        let trunk = |leaf: usize, j: usize| n + leaf * uplinks + j;

        // Stage 0: host -> same-leaf local line, or own leaf's up-links.
        let mut up = BitMatrix::new(width, width);
        for u in 0..n {
            let l = leaf_of(u);
            for v in 0..n {
                if leaf_of(v) == l {
                    up.set(u, v, true);
                }
            }
            for j in 0..uplinks {
                up.set(u, trunk(l, j), true);
            }
        }
        // Stage 1: local pass-through wires + the spine crossbar.
        let mut spine = BitMatrix::new(width, width);
        for v in 0..n {
            spine.set(v, v, true);
        }
        for i in n..width {
            for j in n..width {
                spine.set(i, j, true);
            }
        }
        // Stage 2: local line v and the leaf's down-links exit at host v.
        let mut down = BitMatrix::new(width, width);
        for v in 0..n {
            down.set(v, v, true);
            let l = leaf_of(v);
            for j in 0..uplinks {
                down.set(trunk(l, j), v, true);
            }
        }
        Self::new(n, width, vec![up, spine, down], "fat-tree")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pms_fabric::OmegaNetwork;

    #[test]
    fn crossbar_is_one_full_stage() {
        let g = StageGraph::crossbar(8);
        assert_eq!(g.num_stages(), 1);
        assert_eq!(g.width(), 8);
        assert_eq!(g.reach(0).count_ones(), 64);
    }

    #[test]
    fn omega_reach_matches_fabric_paths() {
        // Every line an OmegaNetwork path occupies is reachable from its
        // predecessor in the stage graph.
        let n = 16;
        let g = StageGraph::omega(n);
        let net = OmegaNetwork::new(n);
        assert_eq!(g.num_stages(), net.stages() as usize);
        for u in 0..n {
            for v in 0..n {
                let mut line = u;
                for (s, next) in net.path(u, v).into_iter().enumerate() {
                    assert!(
                        g.reach(s).get(line, next),
                        "({u}->{v}) stage {s}: {line} -> {next} missing"
                    );
                    line = next;
                }
                assert_eq!(line, v);
            }
        }
    }

    #[test]
    fn omega_stage_rows_have_two_candidates() {
        let g = StageGraph::omega(8);
        for s in 0..g.num_stages() {
            for a in 0..8 {
                assert_eq!(g.reach(s).iter_row_ones(a).count(), 2);
            }
        }
    }

    #[test]
    fn butterfly_straight_and_cross() {
        let g = StageGraph::butterfly(8);
        assert_eq!(g.num_stages(), 3);
        // Stage 0 flips the high bit (4), stage 2 the low bit (1).
        assert!(g.reach(0).get(0, 0) && g.reach(0).get(0, 4));
        assert!(g.reach(2).get(0, 0) && g.reach(2).get(0, 1));
        assert!(!g.reach(0).get(0, 1));
    }

    #[test]
    fn fat_tree_width_and_stage_structure() {
        // 16 hosts, arity 4, 2 up-links per leaf: 4 leaves, width 24.
        let g = StageGraph::fat_tree(16, 4, 2);
        assert_eq!(g.num_stages(), 3);
        assert_eq!(g.width(), 16 + 4 * 2);
        // Host 0 reaches its 4 leaf-local lines and 2 up-links.
        assert_eq!(g.reach(0).iter_row_ones(0).count(), 4 + 2);
        // An up-link reaches every down-link but no local line.
        assert_eq!(g.reach(1).iter_row_ones(16).count(), 8);
        assert!(g.reach(1).get(16, 16) && !g.reach(1).get(16, 0));
        // Host 5's exits: its local line plus leaf 1's down-links.
        assert_eq!(
            (0..g.width()).filter(|&a| g.reach(2).get(a, 5)).count(),
            1 + 2
        );
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn omega_rejects_non_power_of_two() {
        StageGraph::omega(6);
    }
}
