//! Stage-graph fabrics with per-stage TDM configuration scheduling.
//!
//! The single PMS crossbar holds `K` configuration matrices and switches
//! between them slot by slot. This crate generalizes that picture to a
//! *pipeline of crossbar stages*: a [`StageGraph`] describes which line of
//! each layer every stage can reach, and a [`MultistageRouter`] keeps one
//! configuration matrix per stage per slot (`B_s^(0..K-1)`), admitting a
//! connection only when a full path through every stage is free in that
//! slot. The flat crossbar is the one-stage degenerate case, so the
//! existing scheduler semantics are preserved exactly there; Omega,
//! butterfly, and fat-tree graphs expose the internal blocking the paper's
//! multiplexed switching is designed to hide.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod router;

pub use graph::StageGraph;
pub use router::MultistageRouter;
