//! Per-stage TDM scheduling over a [`StageGraph`]: the multi-stage
//! scheduling pass.
//!
//! The router shadows the scheduler's `K` registers with `S x K`
//! per-stage configuration matrices `B_s^(0..K-1)` plus per-layer line
//! occupancy. Admitting a connection for a slot is a depth-first path
//! search through the stage graph under that slot's availability —
//! candidate lines at each hop come from word-parallel `pms-bitmat`
//! operations (`reach-row AND NOT used`) — and commits atomically: either
//! every stage gets its cross-point or nothing changes. Releases walk the
//! stored path stage by stage.
//!
//! Faults reach the router the same way they reach the flat fabric
//! models: every stage is a [`MaskedFabric`]-wrapped crossbar whose mask
//! starts as the stage's reach matrix and loses bits as internal links
//! fail. Masking only removes candidates, so admission stays
//! subset-closed — the invariant `Scheduler::pass_routed` relies on.

use crate::graph::StageGraph;
use pms_bitmat::{BitMatrix, BitVec};
use pms_fabric::{Crossbar, Fabric, MaskedFabric, Technology};
use pms_sched::SlotRouter;
use std::collections::HashMap;

/// Routes connections through a [`StageGraph`], one configuration per
/// stage per TDM slot.
pub struct MultistageRouter {
    graph: StageGraph,
    slots: usize,
    /// Per-stage masked crossbar: the mask is `reach AND link-health`,
    /// so a stage accepts a configuration iff it is a partial permutation
    /// that uses only live inter-stage links.
    stage_fabrics: Vec<MaskedFabric<Crossbar>>,
    /// `B_s^(k)`: the configuration matrix of stage `s` in slot `k`.
    stage_cfgs: Vec<Vec<BitMatrix>>,
    /// `used[slot][layer]`: lines occupied by admitted paths.
    used: Vec<Vec<BitVec>>,
    /// `(slot, u, v) -> ` full line path (layer `0..=S`).
    paths: HashMap<(usize, usize, usize), Vec<usize>>,
}

impl MultistageRouter {
    /// Creates a router over `graph` with `slots` TDM configurations per
    /// stage, all empty.
    ///
    /// # Panics
    /// Panics if `slots == 0`.
    pub fn new(graph: StageGraph, slots: usize) -> Self {
        assert!(slots > 0, "router needs at least one TDM slot");
        let w = graph.width();
        let s_count = graph.num_stages();
        let stage_fabrics = (0..s_count)
            .map(|s| {
                let mut f = MaskedFabric::new(Crossbar::new(w, Technology::Digital));
                f.set_mask(graph.reach(s).clone());
                f
            })
            .collect();
        Self {
            stage_fabrics,
            stage_cfgs: vec![vec![BitMatrix::square(w); slots]; s_count],
            used: vec![vec![BitVec::new(w); s_count + 1]; slots],
            paths: HashMap::new(),
            graph,
            slots,
        }
    }

    /// The stage graph being routed over.
    pub fn graph(&self) -> &StageGraph {
        &self.graph
    }

    /// Number of TDM slots `K`.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The configuration matrix `B_s^(k)` of stage `s` in slot `k`.
    pub fn stage_config(&self, stage: usize, slot: usize) -> &BitMatrix {
        &self.stage_cfgs[stage][slot]
    }

    /// The path `u -> v` currently holds in `slot`, as one line per layer
    /// (`path[0] == u`, `path[S] == v`), if admitted.
    pub fn path_of(&self, slot: usize, u: usize, v: usize) -> Option<&[usize]> {
        self.paths.get(&(slot, u, v)).map(Vec::as_slice)
    }

    /// Connections currently admitted in `slot`, sorted.
    pub fn admitted_in(&self, slot: usize) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = self
            .paths
            .keys()
            .filter(|&&(s, _, _)| s == slot)
            .map(|&(_, u, v)| (u, v))
            .collect();
        out.sort_unstable();
        out
    }

    /// Marks the internal link `a -> b` of stage `s` as failed, evicting
    /// every admitted path that crosses it. Returns the evicted
    /// connections as `(slot, u, v)`, sorted — the caller decides whether
    /// they re-route (fat trees usually can; unique-path networks like
    /// the Omega cannot and stay blocked until healed).
    pub fn fail_stage_link(&mut self, s: usize, a: usize, b: usize) -> Vec<(usize, usize, usize)> {
        let mut mask = self.stage_fabrics[s].mask().clone();
        mask.set(a, b, false);
        self.stage_fabrics[s].set_mask(mask);
        let mut evicted: Vec<(usize, usize, usize)> = self
            .paths
            .iter()
            .filter(|(_, path)| path[s] == a && path[s + 1] == b)
            .map(|(&key, _)| key)
            .collect();
        evicted.sort_unstable();
        for &(slot, u, v) in &evicted {
            self.release(slot, u, v);
        }
        evicted
    }

    /// Heals the internal link `a -> b` of stage `s` (a no-op unless the
    /// stage graph wires that link at all — healing never grows the
    /// topology).
    pub fn heal_stage_link(&mut self, s: usize, a: usize, b: usize) {
        if self.graph.reach(s).get(a, b) {
            let mut mask = self.stage_fabrics[s].mask().clone();
            mask.set(a, b, true);
            self.stage_fabrics[s].set_mask(mask);
        }
    }

    /// Depth-first path search from `u` (layer 0) to `v` (layer `S`)
    /// under `slot`'s line availability. Returns one line per layer.
    fn search(&self, slot: usize, u: usize, v: usize) -> Option<Vec<usize>> {
        let mut prof = pms_trace::prof::ProfScope::enter(pms_trace::prof::ProfKernel::RouteDfs);
        let s_count = self.graph.num_stages();
        let mut path = vec![0usize; s_count + 1];
        path[0] = u;
        path[s_count] = v;
        // Each DFS frame builds one candidate row of the layer's width.
        prof.add_words(((s_count + 1) * self.graph.width().div_ceil(64)) as u64);
        if self.dfs(slot, 0, u, v, &mut path) {
            Some(path)
        } else {
            None
        }
    }

    /// Extends the path from `line` (a free line of layer `stage`) toward
    /// `v`, backtracking over the word-parallel candidate sets.
    fn dfs(&self, slot: usize, stage: usize, line: usize, v: usize, path: &mut [usize]) -> bool {
        let last = self.graph.num_stages() - 1;
        // Candidate next lines: reachable over live links, not yet used.
        let mut cand = self.stage_fabrics[stage].mask().row(line);
        cand.and_not_assign(&self.used[slot][stage + 1]);
        if stage == last {
            return cand.get(v);
        }
        for b in cand.iter_ones() {
            path[stage + 1] = b;
            if self.dfs(slot, stage + 1, b, v, path) {
                return true;
            }
        }
        false
    }

    /// Debug-checks the router's invariants: every stage configuration is
    /// accepted by its masked crossbar (partial permutation over live
    /// links), and configurations agree with the stored paths and line
    /// occupancy.
    pub fn check_invariants(&self) {
        let s_count = self.graph.num_stages();
        for stage in 0..s_count {
            for slot in 0..self.slots {
                assert!(
                    self.stage_fabrics[stage].is_valid(&self.stage_cfgs[stage][slot]),
                    "stage {stage} slot {slot} configuration invalid"
                );
            }
        }
        let mut cfgs = vec![vec![BitMatrix::square(self.graph.width()); self.slots]; s_count];
        let mut used = vec![vec![BitVec::new(self.graph.width()); s_count + 1]; self.slots];
        for (&(slot, u, v), path) in &self.paths {
            assert_eq!((path[0], path[s_count]), (u, v), "path endpoints drifted");
            for (layer, &line) in path.iter().enumerate() {
                assert!(!used[slot][layer].get(line), "line double-booked");
                used[slot][layer].set(line, true);
            }
            for stage in 0..s_count {
                cfgs[stage][slot].set(path[stage], path[stage + 1], true);
            }
        }
        assert_eq!(cfgs, self.stage_cfgs, "stage configs out of sync");
        assert_eq!(used, self.used, "line occupancy out of sync");
    }
}

impl SlotRouter for MultistageRouter {
    fn stages(&self) -> usize {
        self.graph.num_stages()
    }

    fn try_admit(&mut self, slot: usize, u: usize, v: usize) -> bool {
        assert!(slot < self.slots, "slot {slot} out of range");
        assert!(
            u < self.graph.ports() && v < self.graph.ports(),
            "port out of range"
        );
        assert!(
            !self.paths.contains_key(&(slot, u, v)),
            "({u},{v}) already admitted in slot {slot}"
        );
        if self.used[slot][0].get(u) || self.used[slot][self.graph.num_stages()].get(v) {
            return false;
        }
        let Some(path) = self.search(slot, u, v) else {
            return false;
        };
        for (layer, &line) in path.iter().enumerate() {
            self.used[slot][layer].set(line, true);
        }
        for stage in 0..self.graph.num_stages() {
            self.stage_cfgs[stage][slot].set(path[stage], path[stage + 1], true);
        }
        self.paths.insert((slot, u, v), path);
        true
    }

    fn release(&mut self, slot: usize, u: usize, v: usize) {
        let path = self
            .paths
            .remove(&(slot, u, v))
            .unwrap_or_else(|| panic!("({u},{v}) not admitted in slot {slot}"));
        for (layer, &line) in path.iter().enumerate() {
            self.used[slot][layer].set(line, false);
        }
        for stage in 0..self.graph.num_stages() {
            self.stage_cfgs[stage][slot].set(path[stage], path[stage + 1], false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pms_fabric::OmegaNetwork;

    #[test]
    fn crossbar_router_admits_any_partial_permutation() {
        let mut r = MultistageRouter::new(StageGraph::crossbar(8), 2);
        for u in 0..8 {
            assert!(r.try_admit(0, u, (u + 3) % 8));
        }
        // Endpoint reuse is the only constraint.
        assert!(!r.try_admit(0, 0, 0), "input 0 already busy");
        assert!(r.try_admit(1, 0, 0), "other slot is independent");
        r.check_invariants();
    }

    #[test]
    fn release_frees_the_path() {
        let n = 8;
        let net = OmegaNetwork::new(n);
        // Find a pair whose unique path conflicts with (0 -> 0)'s.
        let (u, v) = (1..n)
            .flat_map(|u| (1..n).map(move |v| (u, v)))
            .find(|&(u, v)| net.paths_conflict((0, 0), (u, v)))
            .expect("omega must have internal conflicts");
        let mut r = MultistageRouter::new(StageGraph::omega(n), 1);
        assert!(r.try_admit(0, 0, 0));
        assert!(!r.try_admit(0, u, v), "conflicting path must block");
        r.release(0, 0, 0);
        assert!(r.try_admit(0, u, v), "released lines must be reusable");
        r.check_invariants();
    }

    #[test]
    fn omega_admission_matches_fabric_predicate() {
        // Unique paths: greedy admission of a whole configuration succeeds
        // iff `OmegaNetwork::is_valid` accepts it, regardless of order.
        let n = 8;
        let net = OmegaNetwork::new(n);
        for seed in 0..64usize {
            let cfg = BitMatrix::from_pairs(n, n, (0..n).map(|u| (u, (u * 3 + seed) % n)));
            let pairs: Vec<(usize, usize)> = cfg.iter_ones().collect();
            let mut r = MultistageRouter::new(StageGraph::omega(n), 1);
            let all_admitted = pairs.iter().all(|&(u, v)| r.try_admit(0, u, v));
            assert_eq!(
                all_admitted,
                net.is_valid(&cfg),
                "seed {seed}: router and OmegaNetwork disagree"
            );
            r.check_invariants();
        }
    }

    #[test]
    fn fat_tree_reroutes_around_failed_uplink_but_omega_blocks() {
        // Fat tree: 8 hosts, arity 4, 2 up-links. A cross-leaf connection
        // survives losing one up-link — the other carries it.
        let mut ft = MultistageRouter::new(StageGraph::fat_tree(8, 4, 2), 1);
        assert!(ft.try_admit(0, 0, 5));
        let path = ft.path_of(0, 0, 5).unwrap().to_vec();
        let evicted = ft.fail_stage_link(0, path[0], path[1]);
        assert_eq!(evicted, vec![(0, 0, 5)]);
        assert!(ft.try_admit(0, 0, 5), "second up-link must carry it");
        assert_ne!(ft.path_of(0, 0, 5).unwrap()[1], path[1]);
        ft.check_invariants();

        // Omega: unique paths, so the same fault pins the pair down until
        // the link heals.
        let mut om = MultistageRouter::new(StageGraph::omega(8), 1);
        assert!(om.try_admit(0, 3, 6));
        let path = om.path_of(0, 3, 6).unwrap().to_vec();
        let evicted = om.fail_stage_link(1, path[1], path[2]);
        assert_eq!(evicted, vec![(0, 3, 6)]);
        assert!(!om.try_admit(0, 3, 6), "unique path is dead");
        om.heal_stage_link(1, path[1], path[2]);
        assert!(om.try_admit(0, 3, 6), "healed link restores the path");
        om.check_invariants();
    }

    #[test]
    fn heal_never_grows_the_topology() {
        let mut r = MultistageRouter::new(StageGraph::butterfly(8), 1);
        // (0 -> 1) at stage 0 is not wired in a butterfly (stage 0 flips
        // bit 2); healing it must not invent the link.
        r.heal_stage_link(0, 0, 1);
        assert!(!r.stage_fabrics[0].mask().get(0, 1));
    }

    #[test]
    fn slots_are_independent_resources() {
        // Two conflicting omega connections land in different slots — the
        // TDM answer to internal blocking.
        let n = 8;
        let net = OmegaNetwork::new(n);
        let (mut a, mut b) = (None, None);
        'outer: for u in 0..n {
            for w in 0..n {
                if u != w && net.paths_conflict((u, 0), (w, 1)) {
                    (a, b) = (Some((u, 0)), Some((w, 1)));
                    break 'outer;
                }
            }
        }
        let (a, b) = (a.unwrap(), b.unwrap());
        let mut r = MultistageRouter::new(StageGraph::omega(n), 2);
        assert!(r.try_admit(0, a.0, a.1));
        assert!(!r.try_admit(0, b.0, b.1), "conflicting pair blocks in-slot");
        assert!(r.try_admit(1, b.0, b.1), "next slot carries it");
        r.check_invariants();
    }
}
