//! Property tests pinning the stage-graph router against the flat fabric
//! blocking predicates in `pms-fabric`.
//!
//! These are the correctness anchors of the multistage subsystem: for
//! every topology that also exists as a flat model, greedily admitting a
//! whole configuration through the [`MultistageRouter`] must agree with
//! the flat model's `is_valid`. Omega networks have a unique path per
//! pair, so agreement is exact and order-independent; fat trees have
//! interchangeable up-links, so greedy admission succeeds exactly when
//! the per-leaf counting predicate does.

use pms_bitmat::BitMatrix;
use pms_fabric::{Fabric, FatTree, OmegaNetwork};
use pms_multistage::{MultistageRouter, StageGraph};
use pms_sched::SlotRouter;
use proptest::prelude::*;

/// A random partial permutation on `n` ports.
fn partial_perm(n: usize) -> impl Strategy<Value = BitMatrix> {
    prop::collection::vec((0..n, 0..n), 0..n).prop_map(move |pairs| {
        let mut used_in = vec![false; n];
        let mut used_out = vec![false; n];
        let mut m = BitMatrix::square(n);
        for (u, v) in pairs {
            if !used_in[u] && !used_out[v] {
                used_in[u] = true;
                used_out[v] = true;
                m.set(u, v, true);
            }
        }
        m
    })
}

/// Greedily admits every connection of `cfg` into slot 0.
fn admit_all(router: &mut MultistageRouter, cfg: &BitMatrix) -> bool {
    cfg.iter_ones().all(|(u, v)| router.try_admit(0, u, v))
}

proptest! {
    /// The one-stage crossbar graph admits every partial permutation —
    /// the degenerate case adds no blocking.
    #[test]
    fn crossbar_graph_admits_all_partial_permutations(cfg in partial_perm(16)) {
        let mut r = MultistageRouter::new(StageGraph::crossbar(16), 1);
        prop_assert!(admit_all(&mut r, &cfg));
        r.check_invariants();
    }

    /// Omega: unique paths make greedy admission order-independent, so
    /// the router admits a configuration iff `OmegaNetwork::is_valid`
    /// accepts it. This pins the stage-graph re-expression to the
    /// existing blocking predicate bit for bit.
    #[test]
    fn omega_router_matches_is_valid(cfg in partial_perm(16)) {
        let net = OmegaNetwork::new(16);
        let mut r = MultistageRouter::new(StageGraph::omega(16), 1);
        prop_assert_eq!(admit_all(&mut r, &cfg), net.is_valid(&cfg));
        r.check_invariants();
    }

    /// Fat tree (oversubscribed 2:1): up-links within a leaf are
    /// interchangeable, so greedy routing through the stage graph agrees
    /// with the per-leaf counting predicate.
    #[test]
    fn fat_tree_router_matches_is_valid(cfg in partial_perm(16)) {
        let ft = FatTree::oversubscribed(16, 4, 2);
        let g = StageGraph::fat_tree(16, 4, ft.uplinks_per_leaf());
        let mut r = MultistageRouter::new(g, 1);
        prop_assert_eq!(admit_all(&mut r, &cfg), ft.is_valid(&cfg));
        r.check_invariants();
    }

    /// Releasing everything returns the router to a pristine state: the
    /// same configuration admits again.
    #[test]
    fn release_restores_pristine_state(cfg in partial_perm(16)) {
        let net = OmegaNetwork::new(16);
        prop_assume!(net.is_valid(&cfg));
        let mut r = MultistageRouter::new(StageGraph::omega(16), 1);
        prop_assert!(admit_all(&mut r, &cfg));
        for (u, v) in cfg.iter_ones().collect::<Vec<_>>() {
            r.release(0, u, v);
        }
        prop_assert!(r.admitted_in(0).is_empty());
        prop_assert!(admit_all(&mut r, &cfg));
        r.check_invariants();
    }

    /// Butterfly admission is subset-closed, like every physical fabric
    /// constraint: any subset of an admitted configuration also admits.
    #[test]
    fn butterfly_admission_is_subset_closed(cfg in partial_perm(16)) {
        let mut r = MultistageRouter::new(StageGraph::butterfly(16), 1);
        if admit_all(&mut r, &cfg) {
            for (u, v) in cfg.iter_ones().collect::<Vec<_>>() {
                let mut smaller = cfg.clone();
                smaller.set(u, v, false);
                let mut r2 = MultistageRouter::new(StageGraph::butterfly(16), 1);
                prop_assert!(admit_all(&mut r2, &smaller));
            }
        }
    }
}
