//! Alerts section: reconstructs alert activity from `alert-raised` /
//! `alert-cleared` records.
//!
//! The alert engine (`pms_trace::AlertEngine`) emits events that carry
//! only rule *indices* — names live in the rules file — so this section
//! is a pure function of the record stream and renders byte-identically
//! whether built live (telemetry `/alerts`) or from JSONL replay.

use pms_trace::{Json, TraceEvent, TraceRecord};

/// Per-rule alert accounting.
#[derive(Debug, Clone, Default)]
pub struct RuleAlerts {
    /// Rule index (position in the rules file).
    pub rule: u32,
    /// `alert-raised` events for this rule.
    pub raises: u64,
    /// `alert-cleared` events for this rule.
    pub clears: u64,
    /// Raised at the end of the trace with no matching clear.
    pub active_at_end: bool,
    /// Time of the first raise (ns).
    pub first_raise_ns: u64,
    /// Time of the last raise (ns).
    pub last_raise_ns: u64,
    /// Total raised time; an interval still open at end-of-trace is
    /// closed at the last record's timestamp.
    pub active_ns: u64,
    /// Largest observed metric value across raises.
    pub peak_value: u64,
    /// Threshold that was in force at the peak raise.
    pub peak_threshold: u64,
}

/// The alerts section of the report.
#[derive(Debug, Clone, Default)]
pub struct AlertsReport {
    /// Total `alert-raised` events.
    pub raises: u64,
    /// Total `alert-cleared` events.
    pub clears: u64,
    /// Rules still raised at end-of-trace.
    pub active_at_end: u64,
    /// Per-rule accounting, by rule index.
    pub by_rule: Vec<RuleAlerts>,
}

/// Builds the alerts section from a record stream.
pub fn alerts(records: &[TraceRecord]) -> AlertsReport {
    let end_ns = records.last().map(|r| r.t_ns).unwrap_or(0);
    // rule index -> (stats, open-raise timestamp)
    let mut rules: Vec<(RuleAlerts, Option<u64>)> = Vec::new();
    let slot = |rule: u32, rules: &mut Vec<(RuleAlerts, Option<u64>)>| -> usize {
        match rules.iter().position(|(r, _)| r.rule == rule) {
            Some(i) => i,
            None => {
                rules.push((
                    RuleAlerts {
                        rule,
                        ..RuleAlerts::default()
                    },
                    None,
                ));
                rules.len() - 1
            }
        }
    };
    let mut report = AlertsReport::default();
    for rec in records {
        match rec.event {
            TraceEvent::AlertRaised {
                rule,
                value,
                threshold,
                ..
            } => {
                report.raises += 1;
                let i = slot(rule, &mut rules);
                let (r, open) = &mut rules[i];
                r.raises += 1;
                if r.raises == 1 {
                    r.first_raise_ns = rec.t_ns;
                }
                r.last_raise_ns = rec.t_ns;
                if value >= r.peak_value {
                    r.peak_value = value;
                    r.peak_threshold = threshold;
                }
                if open.is_none() {
                    *open = Some(rec.t_ns);
                }
            }
            TraceEvent::AlertCleared { rule, .. } => {
                report.clears += 1;
                let i = slot(rule, &mut rules);
                let (r, open) = &mut rules[i];
                r.clears += 1;
                if let Some(start) = open.take() {
                    r.active_ns += rec.t_ns.saturating_sub(start);
                }
            }
            _ => {}
        }
    }
    let mut by_rule: Vec<RuleAlerts> = rules
        .into_iter()
        .map(|(mut r, open)| {
            if let Some(start) = open {
                r.active_ns += end_ns.saturating_sub(start);
                r.active_at_end = true;
            }
            r
        })
        .collect();
    by_rule.sort_by_key(|r| r.rule);
    report.active_at_end = by_rule.iter().filter(|r| r.active_at_end).count() as u64;
    report.by_rule = by_rule;
    report
}

impl AlertsReport {
    /// JSON rendering (deterministic; used by the report and `/alerts`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("raises", self.raises.into()),
            ("clears", self.clears.into()),
            ("active_at_end", self.active_at_end.into()),
            (
                "by_rule",
                Json::Array(
                    self.by_rule
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("rule", r.rule.into()),
                                ("raises", r.raises.into()),
                                ("clears", r.clears.into()),
                                ("active_at_end", Json::Bool(r.active_at_end)),
                                ("first_raise_ns", r.first_raise_ns.into()),
                                ("last_raise_ns", r.last_raise_ns.into()),
                                ("active_ns", r.active_ns.into()),
                                ("peak_value", r.peak_value.into()),
                                ("peak_threshold", r.peak_threshold.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Text rendering of the section body. Telemetry's `/alerts` serves
    /// exactly this string, so live and replayed output diff clean.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("-- alerts --\n");
        if self.raises == 0 {
            out.push_str("  no alerts raised\n");
            return out;
        }
        out.push_str(&format!(
            "  {} raised, {} cleared, {} active at end\n",
            self.raises, self.clears, self.active_at_end
        ));
        for r in &self.by_rule {
            out.push_str(&format!(
                "  rule {:>3}: {:>4} raised {:>4} cleared  active {:>10} ns{}  peak {}/{} at {} ns\n",
                r.rule,
                r.raises,
                r.clears,
                r.active_ns,
                if r.active_at_end { " (open)" } else { "" },
                r.peak_value,
                r.peak_threshold,
                r.last_raise_ns,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ns: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            t_ns,
            slot: 0,
            event,
        }
    }

    fn raised(t_ns: u64, rule: u32, value: u64, threshold: u64) -> TraceRecord {
        rec(
            t_ns,
            TraceEvent::AlertRaised {
                rule,
                seq: 0,
                value,
                threshold,
            },
        )
    }

    fn cleared(t_ns: u64, rule: u32) -> TraceRecord {
        rec(t_ns, TraceEvent::AlertCleared { rule, seq: 0 })
    }

    #[test]
    fn empty_trace_has_no_alerts() {
        let a = alerts(&[]);
        assert_eq!(a.raises, 0);
        assert!(a.by_rule.is_empty());
        assert!(a.render_text().contains("no alerts raised"));
    }

    #[test]
    fn raise_clear_pairs_accumulate_active_time() {
        let recs = vec![
            raised(100, 0, 50, 10),
            cleared(300, 0),
            raised(500, 0, 80, 10),
            cleared(600, 0),
        ];
        let a = alerts(&recs);
        assert_eq!(a.raises, 2);
        assert_eq!(a.clears, 2);
        assert_eq!(a.active_at_end, 0);
        let r = &a.by_rule[0];
        assert_eq!(r.active_ns, 200 + 100);
        assert_eq!(r.first_raise_ns, 100);
        assert_eq!(r.last_raise_ns, 500);
        assert_eq!(r.peak_value, 80);
        assert!(!r.active_at_end);
    }

    #[test]
    fn open_interval_closes_at_last_record() {
        let recs = vec![
            raised(100, 1, 7, 3),
            rec(
                900,
                TraceEvent::MsgDelivered {
                    src: 0,
                    dst: 1,
                    bytes: 8,
                    msg: 0,
                    latency_ns: 5,
                },
            ),
        ];
        let a = alerts(&recs);
        assert_eq!(a.active_at_end, 1);
        assert!(a.by_rule[0].active_at_end);
        assert_eq!(a.by_rule[0].active_ns, 800);
    }

    #[test]
    fn rules_sort_by_index_and_json_is_deterministic() {
        let recs = vec![raised(10, 3, 1, 1), raised(20, 0, 2, 1), cleared(30, 3)];
        let a = alerts(&recs);
        assert_eq!(a.by_rule[0].rule, 0);
        assert_eq!(a.by_rule[1].rule, 3);
        assert_eq!(alerts(&recs).to_json().render(), a.to_json().render());
        let text = a.render_text();
        assert!(text.contains("rule   0"));
        assert!(text.contains("rule   3"));
    }
}
