//! Predictor churn accounting: who evicts, why, and how often too early.
//!
//! The §3.2 predictors trade working-set registers for reconfiguration
//! transactions; the signal for tuning them is not the raw eviction
//! count but the **premature eviction rate** — evictions of connections
//! the workload turned around and asked for again within a short window.
//! A too-aggressive timeout predictor shows up here directly: every
//! premature eviction is a connection the switch tore down and then
//! paid a full setup for, exactly the churn hybrid-circuit schedulers
//! (Costly Circuits, Submodular Schedules) penalize as reconfiguration
//! cost.

use pms_trace::{EvictCause, Json, TraceEvent, TraceRecord};
use std::collections::HashMap;

/// Eviction accounting for one cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CauseChurn {
    /// The eviction cause label.
    pub cause: &'static str,
    /// Evictions attributed to this cause.
    pub evictions: u64,
    /// Of those, how many were followed by a request or establishment
    /// of the same (src, dst) within the window.
    pub premature: u64,
}

impl CauseChurn {
    /// Premature fraction for this cause (0 when it never evicted).
    pub fn rate(&self) -> f64 {
        if self.evictions == 0 {
            0.0
        } else {
            self.premature as f64 / self.evictions as f64
        }
    }
}

/// The churn report: per-cause and aggregate premature-eviction rates.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnReport {
    /// The re-request window used (ns).
    pub window_ns: u64,
    /// Per-cause accounting, in [`EvictCause::ALL`] label order.
    pub by_cause: Vec<CauseChurn>,
    /// Total evictions across all causes.
    pub total_evictions: u64,
    /// Total premature evictions across all causes.
    pub total_premature: u64,
}

impl ChurnReport {
    /// Aggregate premature-eviction rate.
    pub fn premature_rate(&self) -> f64 {
        if self.total_evictions == 0 {
            0.0
        } else {
            self.total_premature as f64 / self.total_evictions as f64
        }
    }

    /// JSON rendering (deterministic; used by the report).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("window_ns", self.window_ns.into()),
            ("total_evictions", self.total_evictions.into()),
            ("total_premature", self.total_premature.into()),
            ("premature_rate", self.premature_rate().into()),
            (
                "by_cause",
                Json::Array(
                    self.by_cause
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("cause", Json::str(c.cause)),
                                ("evictions", c.evictions.into()),
                                ("premature", c.premature.into()),
                                ("rate", c.rate().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// CSV rendering: one row per cause plus a `total` row, suitable
    /// for spreadsheet import when tuning predictor thresholds.
    pub fn to_csv(&self) -> String {
        let rows = self
            .by_cause
            .iter()
            .map(|c| {
                vec![
                    c.cause.to_string(),
                    c.evictions.to_string(),
                    c.premature.to_string(),
                    format!("{:.4}", c.rate()),
                ]
            })
            .chain(std::iter::once(vec![
                "total".to_string(),
                self.total_evictions.to_string(),
                self.total_premature.to_string(),
                format!("{:.4}", self.premature_rate()),
            ]));
        crate::csv::csv_table(&["cause", "evictions", "premature", "rate"], rows)
    }
}

/// Computes churn over an event stream: an eviction at time `t` is
/// premature when the same (src, dst) is requested or re-established in
/// `(t, t + window_ns]`.
pub fn churn(records: &[TraceRecord], window_ns: u64) -> ChurnReport {
    // Per pair: the (time, cause) of each eviction and the sorted times
    // of each revival signal (request or establish).
    let mut evictions: HashMap<(u32, u32), Vec<(u64, EvictCause)>> = HashMap::new();
    let mut revivals: HashMap<(u32, u32), Vec<u64>> = HashMap::new();
    for rec in records {
        match rec.event {
            TraceEvent::ConnEvicted { src, dst, cause } => {
                evictions
                    .entry((src, dst))
                    .or_default()
                    .push((rec.t_ns, cause));
            }
            TraceEvent::ConnRequested { src, dst } => {
                revivals.entry((src, dst)).or_default().push(rec.t_ns);
            }
            TraceEvent::ConnEstablished { src, dst, .. } => {
                revivals.entry((src, dst)).or_default().push(rec.t_ns);
            }
            _ => {}
        }
    }
    let mut counts: HashMap<&'static str, (u64, u64)> = HashMap::new();
    for (pair, evs) in &evictions {
        let times = revivals.get(pair).map(Vec::as_slice).unwrap_or(&[]);
        for &(t, cause) in evs {
            // Events arrive in time order per pair, so a binary search
            // finds the first revival strictly after the eviction.
            let i = times.partition_point(|&r| r <= t);
            let premature = times
                .get(i)
                .is_some_and(|&r| r - t <= window_ns && window_ns > 0);
            let e = counts.entry(cause.label()).or_default();
            e.0 += 1;
            if premature {
                e.1 += 1;
            }
        }
    }
    let by_cause: Vec<CauseChurn> = EvictCause::ALL
        .iter()
        .map(|c| {
            let (evictions, premature) = counts.get(c.label()).copied().unwrap_or((0, 0));
            CauseChurn {
                cause: c.label(),
                evictions,
                premature,
            }
        })
        .collect();
    ChurnReport {
        window_ns,
        total_evictions: by_cause.iter().map(|c| c.evictions).sum(),
        total_premature: by_cause.iter().map(|c| c.premature).sum(),
        by_cause,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ns: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            t_ns,
            slot: 0,
            event,
        }
    }

    fn evict(t: u64, cause: EvictCause) -> TraceRecord {
        rec(
            t,
            TraceEvent::ConnEvicted {
                src: 0,
                dst: 1,
                cause,
            },
        )
    }

    fn request(t: u64) -> TraceRecord {
        rec(t, TraceEvent::ConnRequested { src: 0, dst: 1 })
    }

    #[test]
    fn re_request_within_window_is_premature() {
        let r = churn(&[evict(1000, EvictCause::Timeout), request(1400)], 500);
        assert_eq!(r.total_evictions, 1);
        assert_eq!(r.total_premature, 1);
        assert_eq!(r.premature_rate(), 1.0);
        let timeout = r.by_cause.iter().find(|c| c.cause == "timeout").unwrap();
        assert_eq!((timeout.evictions, timeout.premature), (1, 1));
    }

    #[test]
    fn re_request_outside_window_is_fine() {
        let r = churn(&[evict(1000, EvictCause::Timeout), request(5000)], 500);
        assert_eq!(r.total_premature, 0);
        assert_eq!(r.premature_rate(), 0.0);
    }

    #[test]
    fn request_before_eviction_does_not_count() {
        let r = churn(&[request(900), evict(1000, EvictCause::RefCount)], 500);
        assert_eq!(r.total_premature, 0);
    }

    #[test]
    fn only_the_same_pair_revives() {
        let other = rec(1100, TraceEvent::ConnRequested { src: 5, dst: 6 });
        let r = churn(&[evict(1000, EvictCause::Drop), other], 500);
        assert_eq!(r.total_premature, 0);
    }

    #[test]
    fn causes_are_separated() {
        let r = churn(
            &[
                evict(100, EvictCause::Timeout),
                request(150),
                evict(1000, EvictCause::PhaseFlush),
            ],
            100,
        );
        let get = |label: &str| {
            r.by_cause
                .iter()
                .find(|c| c.cause == label)
                .unwrap()
                .clone()
        };
        assert_eq!((get("timeout").evictions, get("timeout").premature), (1, 1));
        assert_eq!(get("phase-flush").evictions, 1);
        assert_eq!(get("phase-flush").premature, 0);
        assert_eq!(get("refcount").evictions, 0);
        assert!((r.premature_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let r = churn(&[], 500);
        assert_eq!(r.total_evictions, 0);
        assert_eq!(r.premature_rate(), 0.0);
        assert_eq!(r.by_cause.len(), 5);
    }

    #[test]
    fn csv_has_per_cause_rows_and_total() {
        let r = churn(&[evict(100, EvictCause::Timeout), request(150)], 5_000);
        let csv = r.to_csv();
        assert!(csv.starts_with("cause,evictions,premature,rate\n"), "{csv}");
        assert!(csv.contains("timeout,1,1,1.0000\n"), "{csv}");
        assert!(csv.trim_end().ends_with("total,1,1,1.0000"), "{csv}");
    }
}
