//! Contention analysis: where does a connection's setup wait go, and
//! which wormhole messages look like head-of-line victims.
//!
//! **Setup attribution.** Each `conn-requested -> conn-established`
//! interval is split into three exclusive buckets:
//!
//! * *alignment* — from the request to the first `sched-pass` after it:
//!   waiting for the SL clock edge; irreducible given the 80 ns pass
//!   period, no matter how idle the switch;
//! * *contention* — from that first pass to the establishing pass: the
//!   request was visible but passes kept denying it (a slot conflict or
//!   an availability ripple shadowing the cell — the Table 3 cost made
//!   visible);
//! * *service* — from establishment to the first `slot-advanced` of the
//!   granted register: the connection exists but its slot has not yet
//!   driven the crossbar (slot unavailability).
//!
//! The mean ripple depth of establishing passes is reported alongside,
//! tying the contention bucket back to the paper's SL timing model.
//!
//! **Head-of-line stalls.** For the wormhole baseline (single FIFO per
//! input) a message can stall behind an earlier message *to a different
//! destination*. The detector flags messages whose delivery latency
//! exceeds `hol_factor` x the run's median while an earlier-injected,
//! still-undelivered message from the same source targeted a different
//! destination at injection time. It is a heuristic — the trace does not
//! record queue positions — but on single-FIFO traces it is exactly the
//! blocked-behind-cross-traffic signature VOQs remove.

use pms_trace::{Json, TraceEvent, TraceRecord};
use std::collections::HashMap;

/// Aggregate setup-latency attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupAttribution {
    /// Completed request -> establish setups observed.
    pub setups: u64,
    /// Mean end-to-end setup wait (ns).
    pub mean_wait_ns: f64,
    /// Largest end-to-end setup wait (ns).
    pub max_wait_ns: u64,
    /// Total ns spent waiting for the first scheduling pass.
    pub alignment_ns: u64,
    /// Total ns spent being denied by passes (scheduler contention).
    pub contention_ns: u64,
    /// Total ns from establishment to the slot first driving the
    /// crossbar (slot unavailability).
    pub service_ns: u64,
    /// Mean availability-ripple depth over passes that established at
    /// least one connection.
    pub mean_ripple_depth: f64,
}

/// A head-of-line stall suspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HolStall {
    /// The stalled message's id.
    pub msg: u32,
    /// Its source port.
    pub src: u32,
    /// Its destination port.
    pub dst: u32,
    /// Its delivery latency (ns).
    pub latency_ns: u64,
    /// Earlier same-source messages to other destinations still in
    /// flight when this one was injected.
    pub blockers: u32,
}

/// Head-of-line analysis over the message stream.
#[derive(Debug, Clone, PartialEq)]
pub struct HolReport {
    /// Latency multiple of the median required to flag a message.
    pub factor: f64,
    /// Median delivery latency used as the baseline (ns).
    pub median_latency_ns: u64,
    /// Flagged messages, worst first (capped by the caller).
    pub stalls: Vec<HolStall>,
    /// Total messages examined.
    pub messages: u64,
}

/// The combined contention report.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionReport {
    /// Setup-latency attribution.
    pub setup: SetupAttribution,
    /// Head-of-line stall detection.
    pub hol: HolReport,
}

impl ContentionReport {
    /// JSON rendering (deterministic; used by the report).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "setup",
                Json::obj([
                    ("setups", self.setup.setups.into()),
                    ("mean_wait_ns", self.setup.mean_wait_ns.into()),
                    ("max_wait_ns", self.setup.max_wait_ns.into()),
                    ("alignment_ns", self.setup.alignment_ns.into()),
                    ("contention_ns", self.setup.contention_ns.into()),
                    ("service_ns", self.setup.service_ns.into()),
                    ("mean_ripple_depth", self.setup.mean_ripple_depth.into()),
                ]),
            ),
            (
                "hol",
                Json::obj([
                    ("factor", self.hol.factor.into()),
                    ("median_latency_ns", self.hol.median_latency_ns.into()),
                    ("messages", self.hol.messages.into()),
                    ("stall_count", self.hol.stalls.len().into()),
                    (
                        "stalls",
                        Json::Array(
                            self.hol
                                .stalls
                                .iter()
                                .map(|s| {
                                    Json::obj([
                                        ("msg", s.msg.into()),
                                        ("src", s.src.into()),
                                        ("dst", s.dst.into()),
                                        ("latency_ns", s.latency_ns.into()),
                                        ("blockers", s.blockers.into()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }

    /// Setup-latency attribution as CSV: one row per wait component.
    /// The `share` column is the component's fraction of attributable
    /// wait (alignment + contention), matching the text report; slot
    /// service is listed with an empty share since it is pipelined
    /// rather than attributable.
    pub fn to_csv(&self) -> String {
        let s = &self.setup;
        let total = (s.alignment_ns + s.contention_ns).max(1) as f64;
        let rows = [
            ("alignment", s.alignment_ns, true),
            ("contention", s.contention_ns, true),
            ("service", s.service_ns, false),
        ]
        .into_iter()
        .map(|(component, ns, attributable)| {
            vec![
                component.to_string(),
                ns.to_string(),
                if attributable {
                    format!("{:.4}", ns as f64 / total)
                } else {
                    String::new()
                },
            ]
        });
        crate::csv::csv_table(&["component", "wait_ns", "share"], rows)
    }
}

/// Runs both analyses over an event stream.
///
/// `hol_factor` is the median-latency multiple above which a message
/// with live cross-destination blockers counts as a HOL stall;
/// `max_stalls` caps the listed suspects (the count is exact).
pub fn contention(records: &[TraceRecord], hol_factor: f64, max_stalls: usize) -> ContentionReport {
    ContentionReport {
        setup: setup_attribution(records),
        hol: hol_stalls(records, hol_factor, max_stalls),
    }
}

fn setup_attribution(records: &[TraceRecord]) -> SetupAttribution {
    // Pass times and per-slot slot-advance times for the two boundary
    // searches, plus ripple depths of establishing passes.
    let mut pass_times: Vec<u64> = Vec::new();
    let mut ripple_sum = 0u64;
    let mut ripple_n = 0u64;
    let mut slot_times: HashMap<u32, Vec<u64>> = HashMap::new();
    for rec in records {
        match rec.event {
            TraceEvent::SchedPass {
                ripple_depth,
                established,
                ..
            } => {
                pass_times.push(rec.t_ns);
                if established > 0 {
                    ripple_sum += ripple_depth as u64;
                    ripple_n += 1;
                }
            }
            TraceEvent::SlotAdvanced { slot_idx } => {
                slot_times.entry(slot_idx).or_default().push(rec.t_ns);
            }
            _ => {}
        }
    }

    let mut pending: HashMap<(u32, u32), u64> = HashMap::new();
    let mut setups = 0u64;
    let mut wait_sum = 0u64;
    let mut max_wait = 0u64;
    let (mut alignment, mut contention, mut service) = (0u64, 0u64, 0u64);
    for rec in records {
        match rec.event {
            TraceEvent::ConnRequested { src, dst } => {
                pending.entry((src, dst)).or_insert(rec.t_ns);
            }
            TraceEvent::ConnEstablished { src, dst, slot_idx } => {
                let Some(t_req) = pending.remove(&(src, dst)) else {
                    continue; // preloaded, not requested
                };
                let t_est = rec.t_ns;
                let wait = t_est.saturating_sub(t_req);
                setups += 1;
                wait_sum += wait;
                max_wait = max_wait.max(wait);
                // First pass strictly after the request, capped at the
                // establish time (wormhole/circuit traces have no
                // passes: the whole wait is alignment with the grant
                // machinery).
                let i = pass_times.partition_point(|&t| t <= t_req);
                match pass_times.get(i) {
                    Some(&t_pass) if t_pass <= t_est => {
                        alignment += t_pass - t_req;
                        contention += t_est - t_pass;
                    }
                    _ => alignment += wait,
                }
                // First visit of the granted slot at or after establish.
                if let Some(times) = slot_times.get(&slot_idx) {
                    let j = times.partition_point(|&t| t < t_est);
                    if let Some(&t_slot) = times.get(j) {
                        service += t_slot - t_est;
                    }
                }
            }
            _ => {}
        }
    }
    SetupAttribution {
        setups,
        mean_wait_ns: if setups == 0 {
            0.0
        } else {
            wait_sum as f64 / setups as f64
        },
        max_wait_ns: max_wait,
        alignment_ns: alignment,
        contention_ns: contention,
        service_ns: service,
        mean_ripple_depth: if ripple_n == 0 {
            0.0
        } else {
            ripple_sum as f64 / ripple_n as f64
        },
    }
}

fn hol_stalls(records: &[TraceRecord], factor: f64, max_stalls: usize) -> HolReport {
    // Message lifecycle: injection time/source/destination, delivery
    // latency.
    struct Life {
        t_inj: u64,
        src: u32,
        dst: u32,
        latency: Option<u64>,
        t_del: u64,
    }
    let mut lives: HashMap<u32, Life> = HashMap::new();
    let mut order: Vec<u32> = Vec::new(); // injection order
    for rec in records {
        match rec.event {
            TraceEvent::MsgInjected { src, dst, msg, .. } => {
                lives.insert(
                    msg,
                    Life {
                        t_inj: rec.t_ns,
                        src,
                        dst,
                        latency: None,
                        t_del: u64::MAX,
                    },
                );
                order.push(msg);
            }
            TraceEvent::MsgDelivered {
                msg, latency_ns, ..
            } => {
                if let Some(l) = lives.get_mut(&msg) {
                    l.latency = Some(latency_ns);
                    l.t_del = rec.t_ns;
                }
            }
            _ => {}
        }
    }
    let mut lats: Vec<u64> = lives.values().filter_map(|l| l.latency).collect();
    lats.sort_unstable();
    let median = lats.get(lats.len() / 2).copied().unwrap_or(0);
    let threshold = (median as f64 * factor) as u64;
    let mut stalls: Vec<HolStall> = Vec::new();
    for (i, &msg) in order.iter().enumerate() {
        let m = &lives[&msg];
        let Some(latency) = m.latency else { continue };
        if median == 0 || latency <= threshold {
            continue;
        }
        // Earlier injections from the same source, to a different
        // destination, still undelivered when this message arrived.
        let blockers = order[..i]
            .iter()
            .filter(|&&e| {
                let b = &lives[&e];
                b.src == m.src && b.dst != m.dst && b.t_inj <= m.t_inj && b.t_del > m.t_inj
            })
            .count() as u32;
        if blockers > 0 {
            stalls.push(HolStall {
                msg,
                src: m.src,
                dst: m.dst,
                latency_ns: latency,
                blockers,
            });
        }
    }
    stalls.sort_by(|a, b| b.latency_ns.cmp(&a.latency_ns).then(a.msg.cmp(&b.msg)));
    stalls.truncate(max_stalls);
    HolReport {
        factor,
        median_latency_ns: median,
        stalls,
        messages: lives.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ns: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            t_ns,
            slot: 0,
            event,
        }
    }

    fn pass(t: u64, established: u32, ripple: u32) -> TraceRecord {
        rec(
            t,
            TraceEvent::SchedPass {
                passes: 0,
                ripple_depth: ripple,
                established,
                released: 0,
                denied: 0,
            },
        )
    }

    #[test]
    fn wait_splits_into_alignment_contention_service() {
        let records = vec![
            rec(100, TraceEvent::ConnRequested { src: 0, dst: 1 }),
            pass(160, 0, 2), // visible but denied
            pass(240, 1, 4), // established here
            rec(
                240,
                TraceEvent::ConnEstablished {
                    src: 0,
                    dst: 1,
                    slot_idx: 3,
                },
            ),
            rec(300, TraceEvent::SlotAdvanced { slot_idx: 3 }),
        ];
        let s = setup_attribution(&records);
        assert_eq!(s.setups, 1);
        assert_eq!(s.mean_wait_ns, 140.0);
        assert_eq!(s.max_wait_ns, 140);
        assert_eq!(s.alignment_ns, 60); // 100 -> 160
        assert_eq!(s.contention_ns, 80); // 160 -> 240
        assert_eq!(s.service_ns, 60); // 240 -> 300
        assert_eq!(s.mean_ripple_depth, 4.0);
    }

    #[test]
    fn no_passes_means_pure_alignment() {
        let records = vec![
            rec(0, TraceEvent::ConnRequested { src: 0, dst: 1 }),
            rec(
                80,
                TraceEvent::ConnEstablished {
                    src: 0,
                    dst: 1,
                    slot_idx: 0,
                },
            ),
        ];
        let s = setup_attribution(&records);
        assert_eq!(s.alignment_ns, 80);
        assert_eq!(s.contention_ns, 0);
    }

    #[test]
    fn preloaded_establish_without_request_is_ignored() {
        let records = vec![rec(
            0,
            TraceEvent::ConnEstablished {
                src: 0,
                dst: 1,
                slot_idx: 0,
            },
        )];
        assert_eq!(setup_attribution(&records).setups, 0);
    }

    fn inj(t: u64, msg: u32, src: u32, dst: u32) -> TraceRecord {
        rec(
            t,
            TraceEvent::MsgInjected {
                src,
                dst,
                bytes: 64,
                msg,
            },
        )
    }

    fn del(t: u64, msg: u32, src: u32, dst: u32, latency: u64) -> TraceRecord {
        rec(
            t,
            TraceEvent::MsgDelivered {
                src,
                dst,
                bytes: 64,
                msg,
                latency_ns: latency,
            },
        )
    }

    #[test]
    fn hol_victim_is_flagged_with_its_blocker() {
        // msg 0: src 0 -> dst 1, slow to deliver (occupies the FIFO head).
        // msg 1: src 0 -> dst 2, injected behind it, delivered very late.
        // msgs 2..5: fast traffic from another source fixing the median.
        let records = vec![
            inj(0, 0, 0, 1),
            inj(10, 1, 0, 2),
            inj(20, 2, 3, 1),
            del(120, 2, 3, 1, 100),
            inj(30, 3, 3, 2),
            del(130, 3, 3, 2, 100),
            inj(40, 4, 3, 0),
            del(140, 4, 3, 0, 100),
            del(5_000, 0, 0, 1, 5_000),
            del(9_000, 1, 0, 2, 8_990),
        ];
        let h = hol_stalls(&records, 2.0, 10);
        assert_eq!(h.median_latency_ns, 100);
        let victim = h.stalls.iter().find(|s| s.msg == 1).expect("msg 1 flagged");
        assert_eq!(victim.blockers, 1);
        assert_eq!((victim.src, victim.dst), (0, 2));
        // msg 0 is slow but has no earlier same-src blocker.
        assert!(!h.stalls.iter().any(|s| s.msg == 0));
    }

    #[test]
    fn fast_messages_are_never_stalls() {
        let records = vec![
            inj(0, 0, 0, 1),
            del(100, 0, 0, 1, 100),
            inj(10, 1, 0, 2),
            del(110, 1, 0, 2, 100),
        ];
        let h = hol_stalls(&records, 2.0, 10);
        assert!(h.stalls.is_empty());
        assert_eq!(h.messages, 2);
    }

    #[test]
    fn setup_csv_shares_sum_to_one() {
        let records = vec![
            rec(100, TraceEvent::ConnRequested { src: 0, dst: 1 }),
            pass(160, 0, 2),
            pass(240, 1, 4),
            rec(
                240,
                TraceEvent::ConnEstablished {
                    src: 0,
                    dst: 1,
                    slot_idx: 3,
                },
            ),
            rec(300, TraceEvent::SlotAdvanced { slot_idx: 3 }),
        ];
        let r = contention(&records, 2.0, 16);
        let csv = r.to_csv();
        assert!(csv.starts_with("component,wait_ns,share\n"), "{csv}");
        let mut share = 0.0f64;
        for line in csv.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            assert_eq!(cols.len(), 3, "{line}");
            if !cols[2].is_empty() {
                share += cols[2].parse::<f64>().unwrap();
            }
        }
        assert!((share - 1.0).abs() < 0.01, "shares sum to {share}:\n{csv}");
        assert!(csv.contains("service,"), "{csv}");
    }
}
