//! `pms-analyze`: derived metrics over `pms-trace` event streams.
//!
//! Where `pms-trace` records *what happened* — connection lifecycle,
//! scheduler passes, slot advances — this crate turns a record stream
//! (in-memory or replayed from a JSONL file) into the reports an
//! operator actually reads:
//!
//! * [`occupancy`] — per-slot crossbar utilization over time, with
//!   min/mean/max and a text sparkline per configuration register;
//! * [`heatmap`] — the N×N traffic demand matrix (messages and bytes
//!   per source/destination pair), exportable as JSON or CSV;
//! * [`churn`] — per-cause eviction counts joined with subsequent
//!   re-requests to yield the premature-eviction rate, the tuning
//!   signal for the §3.2 connection predictors;
//! * [`contention`] — setup-latency attribution (alignment vs
//!   scheduler contention vs slot service) and a head-of-line stall
//!   detector for the wormhole baseline;
//! * [`faults`] — fault exposure, efficiency loss inside fault windows
//!   versus clean operation, and clear-to-reestablish recovery latency
//!   (the graceful-degradation signal for `pms-faults` runs);
//! * [`spans`] — causal-span analysis: exact per-phase latency
//!   distributions (p50/p99) and critical-path extraction from
//!   `span-start`/`span-end` records, with the tiling invariant
//!   (phases sum to the end-to-end span) checked per message;
//! * [`admission`] — streaming-admission accounting over `pms-admit`
//!   event streams: per-tenant accept/reject/shed counts, the
//!   reject-cause breakdown, batch-fill histogram, and queue-wait
//!   percentiles;
//! * [`schedule`] — schedule-quality section for `pms-schedopt` costed
//!   schedules: per-configuration demand coverage, reconfiguration
//!   overhead fraction, and predicted-vs-simulated makespan error
//!   (built from the schedule itself, not a trace — traces cannot
//!   reconstruct the schedule that produced them);
//! * [`timeseries`] — summary and CSV export of the slot-windowed
//!   `metrics-snapshot` series emitted by
//!   [`pms_trace::SnapshotCollector`];
//! * [`alerts`] — alert raises/clears reconstructed from
//!   `alert-raised`/`alert-cleared` records, rendered identically live
//!   (telemetry `/alerts`) and from replay;
//! * [`diff`] — run-vs-run deltas (`analyze --diff`): per-metric and
//!   per-phase changes with a significance flag, plus the ratio-table
//!   formatter `bench_baseline --check` uses;
//! * [`report`] — all of the above assembled into one deterministic
//!   [`Report`](report::Report), rendered as JSON or terminal text.
//!
//! [`replay`] parses JSONL traces (as written by
//! [`pms_trace::JsonlTracer`] or [`pms_trace::write_jsonl`]) back into
//! [`pms_trace::TraceRecord`]s, so the `analyze` binary reproduces the
//! exact report a live `simulate --report` run would have produced:
//! reports are pure functions of the record stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod alerts;
pub mod churn;
pub mod contention;
pub mod csv;
pub mod diff;
pub mod faults;
pub mod heatmap;
pub mod occupancy;
pub mod replay;
pub mod report;
pub mod schedule;
pub mod spans;
pub mod timeseries;

pub use admission::{admission, AdmissionReport, TenantAdmission, FILL_BUCKETS};
pub use alerts::{alerts, AlertsReport, RuleAlerts};
pub use churn::{churn, CauseChurn, ChurnReport};
pub use contention::{contention, ContentionReport, HolReport, HolStall, SetupAttribution};
pub use diff::{
    diff_reports, render_ratio_table, worst_regression, DiffReport, MetricDelta, RatioRow,
    DEFAULT_EPSILON,
};
pub use faults::{faults, ClassFaults, FaultsReport};
pub use heatmap::{heatmap, Heatmap};
pub use occupancy::{occupancy, OccupancyReport, SlotOccupancy};
pub use replay::{parse_jsonl, parse_line, Replay};
pub use report::{build_report, infer_ports, Report, ReportConfig};
pub use schedule::{schedule_quality, ConfigCoverage, ScheduleQualityReport};
pub use spans::{spans, CriticalMsg, PhaseStats, SpansReport};
pub use timeseries::{timeseries, timeseries_csv, TimeseriesReport};
