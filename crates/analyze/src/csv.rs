//! Minimal CSV writer shared by every section's `to_csv` export.
//!
//! One table = one header row plus data rows. Fields containing a
//! comma, quote, or newline are quoted per RFC 4180; everything this
//! crate exports today is plain numbers and static labels, so quoting
//! is a robustness guard, not a hot path.

/// Renders one CSV table. The header names the columns; each row must
/// have the same arity (checked in debug builds).
pub fn csv_table<R>(header: &[&str], rows: R) -> String
where
    R: IntoIterator<Item = Vec<String>>,
{
    let mut out = String::new();
    push_row(&mut out, header.iter().map(|s| s.to_string()));
    for row in rows {
        debug_assert_eq!(row.len(), header.len(), "CSV row arity mismatch");
        push_row(&mut out, row);
    }
    out
}

fn push_row(out: &mut String, fields: impl IntoIterator<Item = String>) {
    let mut first = true;
    for field in fields {
        if !first {
            out.push(',');
        }
        first = false;
        if field.contains([',', '"', '\n']) {
            out.push('"');
            out.push_str(&field.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(&field);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_render_unquoted() {
        let csv = csv_table(
            &["a", "b"],
            [vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert_eq!(csv, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn reserved_characters_are_quoted() {
        let csv = csv_table(&["x"], [vec!["he said \"hi, there\"".into()]]);
        assert_eq!(csv, "x\n\"he said \"\"hi, there\"\"\"\n");
    }

    #[test]
    fn empty_rows_yield_header_only() {
        assert_eq!(csv_table(&["only", "header"], []), "only,header\n");
    }
}
