//! The combined analysis report: everything `analyze` and the
//! simulators' `--report` flag produce.
//!
//! A report is a pure function of the record stream and the
//! [`ReportConfig`] — no wall-clock timestamps, no environment — so the
//! same trace always renders byte-identical output whether it was
//! analyzed in-process (`simulate --report`) or replayed from JSONL
//! (`analyze`). CI leans on that determinism to diff the two paths.

use crate::admission::{admission, AdmissionReport};
use crate::alerts::{alerts, AlertsReport};
use crate::churn::{churn, ChurnReport};
use crate::contention::{contention, ContentionReport};
use crate::faults::{faults, FaultsReport};
use crate::heatmap::{heatmap, Heatmap};
use crate::occupancy::{occupancy, OccupancyReport};
use crate::spans::{spans, SpansReport};
use crate::timeseries::{timeseries, TimeseriesReport};
use pms_trace::{Json, TraceEvent, TraceRecord};

/// Report tuning knobs.
#[derive(Debug, Clone)]
pub struct ReportConfig {
    /// Port count override; inferred from the trace when `None`.
    pub ports: Option<usize>,
    /// Premature-eviction re-request window (ns).
    pub premature_window_ns: u64,
    /// Sparkline width in columns.
    pub spark_width: usize,
    /// HOL detector: latency multiple of the median that flags a stall.
    pub hol_factor: f64,
    /// HOL detector: how many suspects to list.
    pub max_hol_stalls: usize,
}

impl Default for ReportConfig {
    fn default() -> Self {
        ReportConfig {
            ports: None,
            premature_window_ns: 5_000,
            spark_width: 48,
            hol_factor: 2.0,
            max_hol_stalls: 16,
        }
    }
}

/// The assembled report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Port count used by the matrix-shaped sections.
    pub ports: usize,
    /// Records analyzed.
    pub records: u64,
    /// Event counts per kind, in kind-label order.
    pub event_counts: Vec<(&'static str, u64)>,
    /// Slot-occupancy timeline.
    pub occupancy: OccupancyReport,
    /// Traffic demand matrix.
    pub heatmap: Heatmap,
    /// Eviction churn and premature-eviction rates.
    pub churn: ChurnReport,
    /// Setup-latency attribution and HOL stalls.
    pub contention: ContentionReport,
    /// Fault exposure, efficiency loss, and recovery latency.
    pub faults: FaultsReport,
    /// Causal-span phase latencies and critical paths.
    pub spans: SpansReport,
    /// Streaming-admission accounting (per-tenant accepts/rejects,
    /// batch fill, queue wait).
    pub admission: AdmissionReport,
    /// Metrics-snapshot time-series summary.
    pub timeseries: TimeseriesReport,
    /// Alert raises/clears reconstructed from the trace.
    pub alerts: AlertsReport,
}

/// Infers the crossbar size from a trace: one more than the largest
/// port index mentioned by any event.
pub fn infer_ports(records: &[TraceRecord]) -> usize {
    let mut max_port = 0u32;
    for rec in records {
        let (src, dst) = match rec.event {
            TraceEvent::MsgInjected { src, dst, .. }
            | TraceEvent::MsgDelivered { src, dst, .. }
            | TraceEvent::ConnRequested { src, dst }
            | TraceEvent::ConnEstablished { src, dst, .. }
            | TraceEvent::ConnEvicted { src, dst, .. } => (src, dst),
            _ => continue,
        };
        max_port = max_port.max(src).max(dst);
    }
    max_port as usize + 1
}

/// Builds the full report over an in-memory record stream.
pub fn build_report(records: &[TraceRecord], cfg: &ReportConfig) -> Report {
    let ports = cfg.ports.unwrap_or_else(|| infer_ports(records));
    let mut event_counts: Vec<(&'static str, u64)> = Vec::new();
    for rec in records {
        let kind = rec.event.kind();
        match event_counts.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => event_counts.push((kind, 1)),
        }
    }
    event_counts.sort_by_key(|(k, _)| *k);
    Report {
        ports,
        records: records.len() as u64,
        event_counts,
        occupancy: occupancy(records, ports, cfg.spark_width),
        heatmap: heatmap(records, ports),
        churn: churn(records, cfg.premature_window_ns),
        contention: contention(records, cfg.hol_factor, cfg.max_hol_stalls),
        faults: faults(records),
        spans: spans(records),
        admission: admission(records),
        timeseries: timeseries(records),
        alerts: alerts(records),
    }
}

impl Report {
    /// The full report as one JSON object (deterministic).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("ports", self.ports.into()),
            ("records", self.records.into()),
            (
                "event_counts",
                Json::Object(
                    self.event_counts
                        .iter()
                        .map(|(k, n)| (k.to_string(), Json::UInt(*n)))
                        .collect(),
                ),
            ),
            ("occupancy", self.occupancy.to_json()),
            ("heatmap", self.heatmap.to_json()),
            ("churn", self.churn.to_json()),
            ("contention", self.contention.to_json()),
            ("faults", self.faults.to_json()),
            ("spans", self.spans.to_json()),
            ("admission", self.admission.to_json()),
            ("timeseries", self.timeseries.to_json()),
            ("alerts", self.alerts.to_json()),
        ])
    }

    /// Human-readable rendering for terminals.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        push(
            &mut out,
            format!(
                "== trace report ({} records, {} ports) ==",
                self.records, self.ports
            ),
        );
        push(&mut out, "-- events --".into());
        for (kind, n) in &self.event_counts {
            push(&mut out, format!("  {kind:<18} {n:>10}"));
        }

        push(&mut out, "-- slot occupancy --".into());
        if self.occupancy.slots.is_empty() {
            push(&mut out, "  (no slot-advanced events in trace)".into());
        }
        for s in &self.occupancy.slots {
            push(
                &mut out,
                format!(
                    "  slot {:>2}: {:>8} visits  min {:>5.1}%  mean {:>5.1}%  max {:>5.1}%  |{}|",
                    s.slot,
                    s.samples,
                    s.min * 100.0,
                    s.mean * 100.0,
                    s.max * 100.0,
                    s.sparkline
                ),
            );
        }
        if self.occupancy.total_samples > 0 {
            push(
                &mut out,
                format!(
                    "  overall: mean {:.1}% over {} slot visits",
                    self.occupancy.overall_mean * 100.0,
                    self.occupancy.total_samples
                ),
            );
        }

        push(&mut out, "-- traffic heatmap (hottest pairs) --".into());
        push(
            &mut out,
            format!(
                "  {} msgs, {} bytes over {} active pairs",
                self.heatmap.total_msgs(),
                self.heatmap.total_bytes(),
                self.heatmap.hottest(usize::MAX).len()
            ),
        );
        for (src, dst, msgs, bytes) in self.heatmap.hottest(8) {
            push(
                &mut out,
                format!("  {src:>4} -> {dst:<4} {msgs:>8} msgs {bytes:>12} B"),
            );
        }

        push(
            &mut out,
            format!("-- predictor churn (window {} ns) --", self.churn.window_ns),
        );
        for c in &self.churn.by_cause {
            if c.evictions > 0 {
                push(
                    &mut out,
                    format!(
                        "  {:<12} {:>8} evictions, {:>8} premature ({:>5.1}%)",
                        c.cause,
                        c.evictions,
                        c.premature,
                        c.rate() * 100.0
                    ),
                );
            }
        }
        push(
            &mut out,
            format!(
                "  total: {} evictions, {} premature, rate {:.1}%",
                self.churn.total_evictions,
                self.churn.total_premature,
                self.churn.premature_rate() * 100.0
            ),
        );

        let s = &self.contention.setup;
        push(&mut out, "-- setup-latency attribution --".into());
        push(
            &mut out,
            format!(
                "  {} setups, mean wait {:.0} ns, max {} ns",
                s.setups, s.mean_wait_ns, s.max_wait_ns
            ),
        );
        let total = (s.alignment_ns + s.contention_ns).max(1);
        push(
            &mut out,
            format!(
                "  alignment  {:>12} ns ({:>5.1}%)  waiting for an SL pass",
                s.alignment_ns,
                s.alignment_ns as f64 * 100.0 / total as f64
            ),
        );
        push(
            &mut out,
            format!(
                "  contention {:>12} ns ({:>5.1}%)  denied by passes (mean ripple {:.1})",
                s.contention_ns,
                s.contention_ns as f64 * 100.0 / total as f64,
                s.mean_ripple_depth
            ),
        );
        push(
            &mut out,
            format!(
                "  service    {:>12} ns           established, awaiting slot",
                s.service_ns
            ),
        );

        let h = &self.contention.hol;
        push(
            &mut out,
            format!(
                "-- head-of-line stalls (> {:.1}x median {} ns) --",
                h.factor, h.median_latency_ns
            ),
        );
        if h.stalls.is_empty() {
            push(&mut out, "  none detected".into());
        }
        for st in &h.stalls {
            push(
                &mut out,
                format!(
                    "  msg {:>6} {:>4} -> {:<4} latency {:>10} ns, {} blocker(s)",
                    st.msg, st.src, st.dst, st.latency_ns, st.blockers
                ),
            );
        }

        let f = &self.faults;
        push(&mut out, "-- fault impact --".into());
        if f.injected == 0 {
            push(&mut out, "  no faults injected".into());
        } else {
            for c in &f.by_class {
                if c.injected > 0 {
                    push(
                        &mut out,
                        format!(
                            "  {:<14} {:>6} injected, {:>6} cleared",
                            c.class, c.injected, c.cleared
                        ),
                    );
                }
            }
            push(
                &mut out,
                format!(
                    "  exposure: {} ns faulted vs {} ns clean; {} retries, {} abandoned",
                    f.fault_ns, f.clean_ns, f.msg_retries, f.msgs_abandoned
                ),
            );
            push(
                &mut out,
                format!(
                    "  throughput {:.3} B/ns faulted vs {:.3} B/ns clean: {:.1}% efficiency loss",
                    f.faulted_rate(),
                    f.clean_rate(),
                    f.efficiency_loss() * 100.0
                ),
            );
            push(
                &mut out,
                format!(
                    "  recovery: {} pipes rebuilt (mean {:.0} ns, max {} ns), {} unrecovered",
                    f.recoveries, f.mean_recovery_ns, f.max_recovery_ns, f.unrecovered
                ),
            );
        }

        let sp = &self.spans;
        push(&mut out, "-- causal spans --".into());
        if sp.msgs == 0 && sp.conns == 0 {
            push(
                &mut out,
                "  no spans in trace (run with tracing enabled)".into(),
            );
        } else {
            push(
                &mut out,
                format!(
                    "  {} msg spans, {} conn spans, {} route admits; {} tiling violations, {} open at EOF",
                    sp.msgs, sp.conns, sp.routes, sp.tiling_violations, sp.unmatched_starts
                ),
            );
            for p in &sp.phases {
                push(
                    &mut out,
                    format!(
                        "  {:<9} {:>8} spans  p50 {:>8} ns  p99 {:>8} ns  max {:>8} ns  dominates {}",
                        p.phase, p.count, p.p50_ns, p.p99_ns, p.max_ns, p.dominant_msgs
                    ),
                );
            }
            if !sp.critical_path.is_empty() {
                push(&mut out, "  critical path (slowest messages):".into());
                for cm in &sp.critical_path {
                    push(
                        &mut out,
                        format!(
                            "    msg {:>6} {:>10} ns = arrival {} + admit {} + align {} + transfer {} ({})",
                            cm.msg,
                            cm.total_ns,
                            cm.phase_ns[0],
                            cm.phase_ns[1],
                            cm.phase_ns[2],
                            cm.phase_ns[3],
                            cm.dominant()
                        ),
                    );
                }
            }
        }

        out.push_str(&self.admission.render_text());
        out.push_str(&self.timeseries.render_text());
        out.push_str(&self.alerts.render_text());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pms_trace::EvictCause;

    fn small_trace() -> Vec<TraceRecord> {
        let rec = |t_ns, event| TraceRecord {
            t_ns,
            slot: 0,
            event,
        };
        vec![
            rec(
                0,
                TraceEvent::MsgInjected {
                    src: 0,
                    dst: 3,
                    bytes: 64,
                    msg: 0,
                },
            ),
            rec(0, TraceEvent::ConnRequested { src: 0, dst: 3 }),
            rec(
                80,
                TraceEvent::SchedPass {
                    passes: 1,
                    ripple_depth: 2,
                    established: 1,
                    released: 0,
                    denied: 0,
                },
            ),
            rec(
                80,
                TraceEvent::ConnEstablished {
                    src: 0,
                    dst: 3,
                    slot_idx: 0,
                },
            ),
            rec(100, TraceEvent::SlotAdvanced { slot_idx: 0 }),
            rec(
                180,
                TraceEvent::MsgDelivered {
                    src: 0,
                    dst: 3,
                    bytes: 64,
                    msg: 0,
                    latency_ns: 180,
                },
            ),
            rec(
                500,
                TraceEvent::ConnEvicted {
                    src: 0,
                    dst: 3,
                    cause: EvictCause::Timeout,
                },
            ),
        ]
    }

    #[test]
    fn report_is_deterministic_and_complete() {
        let records = small_trace();
        let cfg = ReportConfig::default();
        let a = build_report(&records, &cfg).to_json().render_pretty();
        let b = build_report(&records, &cfg).to_json().render_pretty();
        assert_eq!(a, b);
        for section in [
            "occupancy",
            "heatmap",
            "churn",
            "contention",
            "faults",
            "spans",
            "admission",
            "timeseries",
            "alerts",
        ] {
            assert!(a.contains(&format!("\"{section}\"")), "missing {section}");
        }
    }

    #[test]
    fn ports_are_inferred_from_the_trace() {
        let records = small_trace();
        assert_eq!(infer_ports(&records), 4);
        let r = build_report(&records, &ReportConfig::default());
        assert_eq!(r.ports, 4);
        assert_eq!(r.heatmap.msg_count(0, 3), 1);
    }

    #[test]
    fn explicit_ports_override_inference() {
        let r = build_report(
            &small_trace(),
            &ReportConfig {
                ports: Some(16),
                ..ReportConfig::default()
            },
        );
        assert_eq!(r.ports, 16);
        assert_eq!(r.heatmap.ports, 16);
    }

    #[test]
    fn text_rendering_names_every_section() {
        let text = build_report(&small_trace(), &ReportConfig::default()).render_text();
        for needle in [
            "slot occupancy",
            "traffic heatmap",
            "predictor churn",
            "setup-latency attribution",
            "head-of-line stalls",
            "fault impact",
            "causal spans",
            "admission",
            "time series",
            "alerts",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn empty_trace_reports_cleanly() {
        let r = build_report(&[], &ReportConfig::default());
        assert_eq!(r.records, 0);
        assert_eq!(r.ports, 1);
        assert!(!r.render_text().is_empty());
        r.to_json().render();
    }
}
