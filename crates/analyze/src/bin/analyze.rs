//! Replay a JSONL trace into utilization/contention reports.
//!
//! ```text
//! analyze TRACE.jsonl [--report PATH] [--heatmap-csv PATH]
//!                     [--churn-csv PATH] [--setup-csv PATH]
//!                     [--window NS] [--ports N] [--quiet]
//! ```
//!
//! Prints the human-readable report to stdout and optionally writes the
//! deterministic JSON report (byte-identical to what the simulator's
//! `--report` flag writes for the same trace) and the CSV exports:
//! sparse heatmap, per-cause predictor churn, and setup-latency
//! attribution.

use pms_analyze::{build_report, parse_jsonl, ReportConfig};
use std::fs;
use std::process::ExitCode;

struct Args {
    trace: String,
    report: Option<String>,
    heatmap_csv: Option<String>,
    churn_csv: Option<String>,
    setup_csv: Option<String>,
    window_ns: u64,
    ports: Option<usize>,
    quiet: bool,
}

const USAGE: &str = "usage: analyze TRACE.jsonl [--report PATH] [--heatmap-csv PATH] \
                     [--churn-csv PATH] [--setup-csv PATH] [--window NS] [--ports N] [--quiet]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        trace: String::new(),
        report: None,
        heatmap_csv: None,
        churn_csv: None,
        setup_csv: None,
        window_ns: ReportConfig::default().premature_window_ns,
        ports: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--report" => args.report = Some(value("--report")?),
            "--heatmap-csv" => args.heatmap_csv = Some(value("--heatmap-csv")?),
            "--churn-csv" => args.churn_csv = Some(value("--churn-csv")?),
            "--setup-csv" => args.setup_csv = Some(value("--setup-csv")?),
            "--window" => {
                args.window_ns = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?
            }
            "--ports" => {
                args.ports = Some(
                    value("--ports")?
                        .parse()
                        .map_err(|e| format!("--ports: {e}"))?,
                )
            }
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err(USAGE.into()),
            _ if arg.starts_with('-') => return Err(format!("unknown flag {arg}\n{USAGE}")),
            _ if args.trace.is_empty() => args.trace = arg,
            _ => return Err(format!("unexpected argument {arg}\n{USAGE}")),
        }
    }
    if args.trace.is_empty() {
        return Err(USAGE.into());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    let text =
        fs::read_to_string(&args.trace).map_err(|e| format!("cannot read {}: {e}", args.trace))?;
    let replay = parse_jsonl(&text).map_err(|e| format!("{}: {e}", args.trace))?;
    let cfg = ReportConfig {
        ports: args.ports,
        premature_window_ns: args.window_ns,
        ..ReportConfig::default()
    };
    let report = build_report(&replay.records, &cfg);
    if !args.quiet {
        print!("{}", report.render_text());
        if replay.skipped_unknown > 0 {
            println!(
                "(skipped {} record(s) of unknown kind)",
                replay.skipped_unknown
            );
        }
    }
    if let Some(path) = &args.report {
        fs::write(path, report.to_json().render_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("report written to {path}");
        }
    }
    if let Some(path) = &args.heatmap_csv {
        fs::write(path, report.heatmap.to_csv())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("heatmap CSV written to {path}");
        }
    }
    if let Some(path) = &args.churn_csv {
        fs::write(path, report.churn.to_csv()).map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("churn CSV written to {path}");
        }
    }
    if let Some(path) = &args.setup_csv {
        fs::write(path, report.contention.to_csv())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("setup CSV written to {path}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("analyze: {msg}");
            ExitCode::FAILURE
        }
    }
}
