//! Replay a JSONL trace into utilization/contention reports.
//!
//! ```text
//! analyze TRACE.jsonl [--report PATH] [--heatmap-csv PATH]
//!                     [--churn-csv PATH] [--setup-csv PATH]
//!                     [--timeseries-csv PATH] [--alerts-json PATH]
//!                     [--window NS] [--ports N] [--quiet]
//! analyze --diff A.jsonl B.jsonl [--epsilon FRAC] [--ports N]
//! ```
//!
//! Prints the human-readable report to stdout and optionally writes the
//! deterministic JSON report (byte-identical to what the simulator's
//! `--report` flag writes for the same trace) and the CSV exports:
//! sparse heatmap, per-cause predictor churn, setup-latency
//! attribution, and the metrics-snapshot time series.
//!
//! `--diff` compares two traces instead: it builds a report from each
//! and prints a per-metric/per-phase delta table, flagging rows whose
//! relative change is at least `--epsilon` (default 5%). Exits
//! non-zero when any significant change is found, so CI can gate on it;
//! diffing a run against itself always reports zero deltas.

use pms_analyze::{build_report, diff_reports, parse_jsonl, Report, ReportConfig, DEFAULT_EPSILON};
use std::fs;
use std::process::ExitCode;

struct Args {
    trace: String,
    diff: Option<String>,
    epsilon: f64,
    report: Option<String>,
    heatmap_csv: Option<String>,
    churn_csv: Option<String>,
    setup_csv: Option<String>,
    timeseries_csv: Option<String>,
    alerts_json: Option<String>,
    window_ns: u64,
    ports: Option<usize>,
    quiet: bool,
}

const USAGE: &str = "usage: analyze TRACE.jsonl [--report PATH] [--heatmap-csv PATH] \
                     [--churn-csv PATH] [--setup-csv PATH] [--timeseries-csv PATH] \
                     [--alerts-json PATH] [--window NS] [--ports N] [--quiet]\n\
       analyze --diff A.jsonl B.jsonl [--epsilon FRAC] [--ports N]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        trace: String::new(),
        diff: None,
        epsilon: DEFAULT_EPSILON,
        report: None,
        heatmap_csv: None,
        churn_csv: None,
        setup_csv: None,
        timeseries_csv: None,
        alerts_json: None,
        window_ns: ReportConfig::default().premature_window_ns,
        ports: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--diff" => args.diff = Some(value("--diff")?),
            "--epsilon" => {
                args.epsilon = value("--epsilon")?
                    .parse()
                    .map_err(|e| format!("--epsilon: {e}"))?
            }
            "--report" => args.report = Some(value("--report")?),
            "--heatmap-csv" => args.heatmap_csv = Some(value("--heatmap-csv")?),
            "--churn-csv" => args.churn_csv = Some(value("--churn-csv")?),
            "--setup-csv" => args.setup_csv = Some(value("--setup-csv")?),
            "--timeseries-csv" => args.timeseries_csv = Some(value("--timeseries-csv")?),
            "--alerts-json" => args.alerts_json = Some(value("--alerts-json")?),
            "--window" => {
                args.window_ns = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?
            }
            "--ports" => {
                args.ports = Some(
                    value("--ports")?
                        .parse()
                        .map_err(|e| format!("--ports: {e}"))?,
                )
            }
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err(USAGE.into()),
            _ if arg.starts_with('-') => return Err(format!("unknown flag {arg}\n{USAGE}")),
            _ if args.trace.is_empty() => args.trace = arg,
            _ => return Err(format!("unexpected argument {arg}\n{USAGE}")),
        }
    }
    if args.trace.is_empty() {
        return Err(USAGE.into());
    }
    Ok(args)
}

fn load_report(path: &str, cfg: &ReportConfig) -> Result<(Report, u64), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let replay = parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok((build_report(&replay.records, cfg), replay.skipped_unknown))
}

/// `--diff A B`: report the deltas, exit non-zero on significant ones.
fn run_diff(args: &Args, a_path: &str) -> Result<bool, String> {
    let cfg = ReportConfig {
        ports: args.ports,
        premature_window_ns: args.window_ns,
        ..ReportConfig::default()
    };
    let (a, _) = load_report(a_path, &cfg)?;
    let (b, _) = load_report(&args.trace, &cfg)?;
    let diff = diff_reports(&a, &b, args.epsilon);
    if !args.quiet {
        print!("{}", diff.render_text());
    }
    if let Some(path) = &args.report {
        fs::write(path, diff.to_json().render_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("diff JSON written to {path}");
        }
    }
    Ok(diff.significant().is_empty())
}

fn run(args: &Args) -> Result<bool, String> {
    if let Some(a_path) = &args.diff {
        return run_diff(args, a_path);
    }
    let text =
        fs::read_to_string(&args.trace).map_err(|e| format!("cannot read {}: {e}", args.trace))?;
    let replay = parse_jsonl(&text).map_err(|e| format!("{}: {e}", args.trace))?;
    let cfg = ReportConfig {
        ports: args.ports,
        premature_window_ns: args.window_ns,
        ..ReportConfig::default()
    };
    let report = build_report(&replay.records, &cfg);
    if !args.quiet {
        print!("{}", report.render_text());
        if replay.skipped_unknown > 0 {
            println!(
                "(skipped {} record(s) of unknown kind)",
                replay.skipped_unknown
            );
        }
    }
    if let Some(path) = &args.report {
        fs::write(path, report.to_json().render_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("report written to {path}");
        }
    }
    if let Some(path) = &args.heatmap_csv {
        fs::write(path, report.heatmap.to_csv())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("heatmap CSV written to {path}");
        }
    }
    if let Some(path) = &args.churn_csv {
        fs::write(path, report.churn.to_csv()).map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("churn CSV written to {path}");
        }
    }
    if let Some(path) = &args.setup_csv {
        fs::write(path, report.contention.to_csv())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("setup CSV written to {path}");
        }
    }
    if let Some(path) = &args.timeseries_csv {
        fs::write(path, pms_analyze::timeseries_csv(&replay.records))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("time-series CSV written to {path}");
        }
    }
    if let Some(path) = &args.alerts_json {
        fs::write(path, report.alerts.to_json().render_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("alerts JSON written to {path}");
        }
    }
    Ok(true)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("analyze: {msg}");
            ExitCode::FAILURE
        }
    }
}
