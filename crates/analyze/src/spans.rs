//! Causal-span analysis: per-phase latency distributions and
//! critical-path extraction from `span-start`/`span-end` records.
//!
//! Every traced message owns a root `msg` span tiled exactly by its four
//! phase children (`arrival -> admit -> align -> transfer`), so the phase
//! columns of this report *explain* end-to-end latency rather than
//! estimating it the way the HOL/attribution heuristics do. The tiling
//! invariant (sum of phases == root duration) is checked per message and
//! violations are counted, not hidden.

use pms_trace::{Json, SpanPhase, TraceEvent, TraceRecord};
use std::collections::HashMap;

/// Slowest messages listed in the critical-path table.
const TOP_SLOW: usize = 8;

/// Latency distribution of one span phase.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Phase label (`msg`, `arrival`, ..., `conn`).
    pub phase: &'static str,
    /// Completed spans of this phase.
    pub count: u64,
    /// Median duration (exact nearest-rank).
    pub p50_ns: u64,
    /// 99th-percentile duration (exact nearest-rank).
    pub p99_ns: u64,
    /// Mean duration.
    pub mean_ns: f64,
    /// Longest single span.
    pub max_ns: u64,
    /// Total time spent in this phase across all spans.
    pub total_ns: u64,
    /// Messages whose end-to-end latency this phase dominates (the
    /// phase with the largest share of the root span). Zero for `msg`,
    /// `route`, and `conn` rows.
    pub dominant_msgs: u64,
}

impl PhaseStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("phase", Json::str(self.phase)),
            ("count", self.count.into()),
            ("p50_ns", self.p50_ns.into()),
            ("p99_ns", self.p99_ns.into()),
            ("mean_ns", self.mean_ns.into()),
            ("max_ns", self.max_ns.into()),
            ("total_ns", self.total_ns.into()),
            ("dominant_msgs", self.dominant_msgs.into()),
        ])
    }
}

/// One row of the critical-path table: a slow message and where its
/// latency went.
#[derive(Debug, Clone)]
pub struct CriticalMsg {
    /// Message id.
    pub msg: u32,
    /// End-to-end (root span) duration.
    pub total_ns: u64,
    /// Per-phase durations in [`SpanPhase::MSG_PHASES`] order.
    pub phase_ns: [u64; 4],
}

impl CriticalMsg {
    /// The phase holding the largest share of this message's latency.
    pub fn dominant(&self) -> &'static str {
        let i = (0..4).max_by_key(|&i| self.phase_ns[i]).unwrap_or(0);
        MSG_PHASE_LABELS[i]
    }

    fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> =
            vec![("msg", self.msg.into()), ("total_ns", self.total_ns.into())];
        for (label, ns) in MSG_PHASE_LABELS.iter().zip(self.phase_ns) {
            fields.push((label, ns.into()));
        }
        fields.push(("dominant", Json::str(self.dominant())));
        Json::obj(fields)
    }
}

const MSG_PHASE_LABELS: [&str; 4] = ["arrival", "admit", "align", "transfer"];

/// The assembled span report.
#[derive(Debug, Clone, Default)]
pub struct SpansReport {
    /// Completed root (`msg`) spans.
    pub msgs: u64,
    /// Completed connection-lifetime spans.
    pub conns: u64,
    /// Route-admission markers (multistage runs only).
    pub routes: u64,
    /// Per-phase distributions, in a fixed label order.
    pub phases: Vec<PhaseStats>,
    /// Messages whose phase spans do not sum to the root span.
    pub tiling_violations: u64,
    /// `span-start` records never closed by a `span-end`.
    pub unmatched_starts: u64,
    /// `span-end` records with no prior `span-start`.
    pub unmatched_ends: u64,
    /// The slowest messages, worst first.
    pub critical_path: Vec<CriticalMsg>,
}

/// Exact nearest-rank percentile over a sorted slice (`p` in 1..=100).
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

/// Builds the span report from a record stream.
pub fn spans(records: &[TraceRecord]) -> SpansReport {
    // span id -> (phase, msg, start time)
    let mut open: HashMap<u32, (SpanPhase, u32, u64)> = HashMap::new();
    let mut durations: HashMap<&'static str, Vec<u64>> = HashMap::new();
    // msg id -> [arrival, admit, align, transfer, root]
    let mut per_msg: HashMap<u32, [Option<u64>; 5]> = HashMap::new();
    let mut report = SpansReport::default();
    for rec in records {
        match rec.event {
            TraceEvent::SpanStart {
                span, phase, msg, ..
            } => {
                open.insert(span, (phase, msg, rec.t_ns));
            }
            TraceEvent::SpanEnd { span, .. } => {
                let Some((phase, msg, start)) = open.remove(&span) else {
                    report.unmatched_ends += 1;
                    continue;
                };
                let dur = rec.t_ns.saturating_sub(start);
                durations.entry(phase.label()).or_default().push(dur);
                let idx = match phase {
                    SpanPhase::Arrival => Some(0),
                    SpanPhase::Admit => Some(1),
                    SpanPhase::Align => Some(2),
                    SpanPhase::Transfer => Some(3),
                    SpanPhase::Msg => Some(4),
                    SpanPhase::Route | SpanPhase::Conn => None,
                };
                if let Some(i) = idx {
                    per_msg.entry(msg).or_default()[i] = Some(dur);
                }
                match phase {
                    SpanPhase::Msg => report.msgs += 1,
                    SpanPhase::Conn => report.conns += 1,
                    SpanPhase::Route => report.routes += 1,
                    _ => {}
                }
            }
            _ => {}
        }
    }
    report.unmatched_starts = open.len() as u64;

    // Tiling check + per-message dominance.
    let mut dominant: HashMap<&'static str, u64> = HashMap::new();
    let mut complete: Vec<CriticalMsg> = Vec::new();
    for (&msg, parts) in &per_msg {
        let (phases, root) = (&parts[..4], parts[4]);
        let (Some(root), true) = (root, phases.iter().all(Option::is_some)) else {
            continue; // partially traced message (e.g. truncated stream)
        };
        let phase_ns = [
            phases[0].unwrap_or(0),
            phases[1].unwrap_or(0),
            phases[2].unwrap_or(0),
            phases[3].unwrap_or(0),
        ];
        if phase_ns.iter().sum::<u64>() != root {
            report.tiling_violations += 1;
        }
        let cm = CriticalMsg {
            msg,
            total_ns: root,
            phase_ns,
        };
        *dominant.entry(cm.dominant()).or_default() += 1;
        complete.push(cm);
    }
    complete.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.msg.cmp(&b.msg)));
    complete.truncate(TOP_SLOW);
    report.critical_path = complete;

    for phase in SpanPhase::ALL {
        let label = phase.label();
        let mut durs = durations.remove(label).unwrap_or_default();
        if durs.is_empty() {
            continue;
        }
        durs.sort_unstable();
        let total: u64 = durs.iter().sum();
        report.phases.push(PhaseStats {
            phase: label,
            count: durs.len() as u64,
            p50_ns: percentile(&durs, 50),
            p99_ns: percentile(&durs, 99),
            mean_ns: total as f64 / durs.len() as f64,
            max_ns: *durs.last().expect("non-empty"),
            total_ns: total,
            dominant_msgs: dominant.get(label).copied().unwrap_or(0),
        });
    }
    report
}

impl SpansReport {
    /// Deterministic JSON rendering.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("msgs", self.msgs.into()),
            ("conns", self.conns.into()),
            ("routes", self.routes.into()),
            (
                "phases",
                Json::Array(self.phases.iter().map(PhaseStats::to_json).collect()),
            ),
            ("tiling_violations", self.tiling_violations.into()),
            ("unmatched_starts", self.unmatched_starts.into()),
            ("unmatched_ends", self.unmatched_ends.into()),
            (
                "critical_path",
                Json::Array(
                    self.critical_path
                        .iter()
                        .map(CriticalMsg::to_json)
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pms_trace::{span::SpanTracker, Tracer};

    fn traced(run: impl FnOnce(&mut SpanTracker, &mut Tracer)) -> Vec<TraceRecord> {
        let mut tracer = Tracer::vec();
        let mut spans = SpanTracker::new();
        run(&mut spans, &mut tracer);
        tracer.records()
    }

    #[test]
    fn phases_tile_the_root_and_dominate_correctly() {
        let records = traced(|s, t| {
            s.msg_start(t, 0, 0, 7, 1, 2);
            s.msg_advance(t, 100, 0, 7, SpanPhase::Admit); // arrival 100
            s.msg_advance(t, 120, 0, 7, SpanPhase::Align); // admit 20
            s.msg_advance(t, 200, 0, 7, SpanPhase::Transfer); // align 80
            s.msg_end(t, 600, 0, 7); // transfer 400
        });
        let r = spans(&records);
        assert_eq!(r.msgs, 1);
        assert_eq!(r.tiling_violations, 0);
        assert_eq!(r.unmatched_starts, 0);
        assert_eq!(r.critical_path.len(), 1);
        let cm = &r.critical_path[0];
        assert_eq!(cm.total_ns, 600);
        assert_eq!(cm.phase_ns, [100, 20, 80, 400]);
        assert_eq!(cm.dominant(), "transfer");
        let transfer = r.phases.iter().find(|p| p.phase == "transfer").unwrap();
        assert_eq!(transfer.dominant_msgs, 1);
        assert_eq!(transfer.p50_ns, 400);
        assert_eq!(transfer.max_ns, 400);
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50), 50);
        assert_eq!(percentile(&sorted, 99), 99);
        assert_eq!(percentile(&sorted, 100), 100);
        assert_eq!(percentile(&[42], 99), 42);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn unmatched_spans_are_counted_not_fatal() {
        let mut records = traced(|s, t| {
            s.msg_start(t, 0, 0, 3, 0, 1);
            s.msg_end(t, 50, 0, 3);
        });
        // Drop the final root span-end: its start becomes unmatched.
        records.pop();
        // And append an end for a span never started.
        records.push(TraceRecord {
            t_ns: 60,
            slot: 0,
            event: TraceEvent::SpanEnd {
                span: 9999,
                phase: SpanPhase::Conn,
                msg: u32::MAX,
            },
        });
        let r = spans(&records);
        assert_eq!(r.unmatched_starts, 1);
        assert_eq!(r.unmatched_ends, 1);
        assert_eq!(r.msgs, 0, "dropped root never completed");
    }

    #[test]
    fn conn_and_route_spans_are_tallied_separately() {
        let records = traced(|s, t| {
            s.conn_start(t, 10, 0, 1, 2);
            s.msg_start(t, 0, 0, 0, 1, 2);
            s.msg_advance(t, 30, 0, 0, SpanPhase::Admit);
            s.route_admitted(t, 30, 0, 0);
            s.msg_end(t, 90, 0, 0);
            s.conn_end(t, 100, 0, 1, 2);
        });
        let r = spans(&records);
        assert_eq!(r.msgs, 1);
        assert_eq!(r.conns, 1);
        assert_eq!(r.routes, 1);
        let conn = r.phases.iter().find(|p| p.phase == "conn").unwrap();
        assert_eq!(conn.max_ns, 90);
    }

    #[test]
    fn critical_path_lists_slowest_first_and_truncates() {
        let records = traced(|s, t| {
            for m in 0..12u32 {
                let base = m as u64 * 1_000;
                s.msg_start(t, base, 0, m, 0, 1);
                s.msg_end(t, base + 10 * (m as u64 + 1), 0, m);
            }
        });
        let r = spans(&records);
        assert_eq!(r.msgs, 12);
        assert_eq!(r.critical_path.len(), TOP_SLOW);
        assert_eq!(r.critical_path[0].msg, 11, "slowest first");
        assert!(r
            .critical_path
            .windows(2)
            .all(|w| w[0].total_ns >= w[1].total_ns));
    }

    #[test]
    fn json_is_deterministic() {
        let records = traced(|s, t| {
            s.msg_start(t, 0, 0, 0, 0, 1);
            s.msg_end(t, 10, 0, 0);
        });
        let a = spans(&records).to_json().render();
        let b = spans(&records).to_json().render();
        assert_eq!(a, b);
        assert!(a.contains("\"critical_path\""));
    }
}
