//! Admission accounting over `pms-admit` event streams.
//!
//! Reconstructs, purely from `request-enqueued` / `request-granted` /
//! `request-rejected` / `batch-admitted` records, what the admission
//! service did: per-tenant accept/reject/shed counts, the reject-cause
//! breakdown, the batch-fill histogram (how full each epoch's request
//! matrix ran against its capacity), and the queue-wait distribution
//! (p50/p99/mean/max, from the `wait_ns` each grant carries). Like
//! every other section, the result is a pure function of the record
//! stream: live runs and JSONL replays render byte-identically.

use pms_trace::{Json, RejectCause, TraceEvent, TraceRecord};
use std::collections::HashMap;

/// Number of batch-fill histogram buckets (decile resolution).
pub const FILL_BUCKETS: usize = 10;

/// Admission accounting for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantAdmission {
    /// The tenant id.
    pub tenant: u32,
    /// Requests that entered the ingress queue.
    pub enqueued: u64,
    /// Requests granted.
    pub granted: u64,
    /// Requests rejected, any cause (sheds included).
    pub rejected: u64,
    /// Of the rejections, how many were shed-oldest victims.
    pub shed: u64,
}

/// The admission report (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionReport {
    /// Total requests that entered the queue.
    pub enqueued: u64,
    /// Total requests granted.
    pub granted: u64,
    /// Total requests rejected.
    pub rejected: u64,
    /// Rejections per cause, in [`RejectCause::ALL`] label order.
    pub by_cause: Vec<(&'static str, u64)>,
    /// Per-tenant accounting, sorted by tenant id.
    pub tenants: Vec<TenantAdmission>,
    /// Batch epochs that ran.
    pub batches: u64,
    /// Matrix capacity (largest seen; 0 with no batches).
    pub capacity: u32,
    /// Batch-fill histogram: bucket `i` counts epochs whose
    /// `selected / capacity` landed in `[i/10, (i+1)/10)` (the last
    /// bucket is closed above).
    pub fill_hist: [u64; FILL_BUCKETS],
    /// Mean `selected / capacity` over all batches.
    pub mean_fill: f64,
    /// Grants carrying a queue-wait sample.
    pub waits: u64,
    /// Queue wait, 50th percentile (ns).
    pub p50_wait_ns: u64,
    /// Queue wait, 99th percentile (ns).
    pub p99_wait_ns: u64,
    /// Queue wait, mean (ns).
    pub mean_wait_ns: f64,
    /// Queue wait, maximum (ns).
    pub max_wait_ns: u64,
}

impl AdmissionReport {
    /// True when the trace carried no admission events at all.
    pub fn is_empty(&self) -> bool {
        self.enqueued == 0 && self.rejected == 0 && self.batches == 0
    }

    /// Accept rate over all resolved requests (granted / (granted +
    /// rejected)); 0 when nothing resolved.
    pub fn accept_rate(&self) -> f64 {
        let resolved = self.granted + self.rejected;
        if resolved == 0 {
            0.0
        } else {
            self.granted as f64 / resolved as f64
        }
    }

    /// JSON rendering (deterministic; used by the report).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("enqueued", self.enqueued.into()),
            ("granted", self.granted.into()),
            ("rejected", self.rejected.into()),
            ("accept_rate", self.accept_rate().into()),
            (
                "by_cause",
                Json::Object(
                    self.by_cause
                        .iter()
                        .map(|(cause, n)| (cause.to_string(), Json::UInt(*n)))
                        .collect(),
                ),
            ),
            (
                "tenants",
                Json::Array(
                    self.tenants
                        .iter()
                        .map(|t| {
                            Json::obj([
                                ("tenant", t.tenant.into()),
                                ("enqueued", t.enqueued.into()),
                                ("granted", t.granted.into()),
                                ("rejected", t.rejected.into()),
                                ("shed", t.shed.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("batches", self.batches.into()),
            ("capacity", self.capacity.into()),
            (
                "fill_hist",
                Json::Array(self.fill_hist.iter().map(|&n| Json::UInt(n)).collect()),
            ),
            ("mean_fill", self.mean_fill.into()),
            ("waits", self.waits.into()),
            ("p50_wait_ns", self.p50_wait_ns.into()),
            ("p99_wait_ns", self.p99_wait_ns.into()),
            ("mean_wait_ns", self.mean_wait_ns.into()),
            ("max_wait_ns", self.max_wait_ns.into()),
        ])
    }

    /// Terminal rendering; one `-- admission --` section.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        push(&mut out, "-- admission --".into());
        if self.is_empty() {
            push(&mut out, "  no admission events in trace".into());
            return out;
        }
        push(
            &mut out,
            format!(
                "  {} enqueued, {} granted, {} rejected ({:.1}% accepted)",
                self.enqueued,
                self.granted,
                self.rejected,
                self.accept_rate() * 100.0
            ),
        );
        for (cause, n) in &self.by_cause {
            if *n > 0 {
                push(&mut out, format!("  reject {:<11} {:>8}", cause, n));
            }
        }
        for t in &self.tenants {
            push(
                &mut out,
                format!(
                    "  tenant {:>4}: {:>8} enqueued {:>8} granted {:>8} rejected ({} shed)",
                    t.tenant, t.enqueued, t.granted, t.rejected, t.shed
                ),
            );
        }
        if self.batches > 0 {
            push(
                &mut out,
                format!(
                    "  {} batches at capacity {}, mean fill {:.1}%",
                    self.batches,
                    self.capacity,
                    self.mean_fill * 100.0
                ),
            );
            let cells: String = self
                .fill_hist
                .iter()
                .map(|&n| {
                    if n == 0 {
                        '.'
                    } else {
                        let max = self.fill_hist.iter().copied().max().unwrap_or(1);
                        // 1..=9 scaled against the fullest bucket.
                        char::from_digit((1 + n * 8 / max.max(1)) as u32, 10).unwrap_or('9')
                    }
                })
                .collect();
            push(&mut out, format!("  fill histogram 0%..100%: |{cells}|"));
        }
        if self.waits > 0 {
            push(
                &mut out,
                format!(
                    "  queue wait: p50 {} ns  p99 {} ns  mean {:.0} ns  max {} ns ({} samples)",
                    self.p50_wait_ns,
                    self.p99_wait_ns,
                    self.mean_wait_ns,
                    self.max_wait_ns,
                    self.waits
                ),
            );
        }
        out
    }
}

/// Computes the admission report over an event stream.
pub fn admission(records: &[TraceRecord]) -> AdmissionReport {
    let mut tenants: HashMap<u32, TenantAdmission> = HashMap::new();
    let blank = |id: u32| TenantAdmission {
        tenant: id,
        enqueued: 0,
        granted: 0,
        rejected: 0,
        shed: 0,
    };
    let mut by_cause: HashMap<&'static str, u64> = HashMap::new();
    let mut waits: Vec<u64> = Vec::new();
    let mut batches = 0u64;
    let mut capacity = 0u32;
    let mut fill_hist = [0u64; FILL_BUCKETS];
    let mut fill_sum = 0.0f64;
    for rec in records {
        match rec.event {
            TraceEvent::RequestEnqueued { tenant: id, .. } => {
                tenants.entry(id).or_insert_with(|| blank(id)).enqueued += 1;
            }
            TraceEvent::RequestGranted {
                tenant: id,
                wait_ns,
                ..
            } => {
                tenants.entry(id).or_insert_with(|| blank(id)).granted += 1;
                waits.push(wait_ns);
            }
            TraceEvent::RequestRejected {
                tenant: id, cause, ..
            } => {
                let t = tenants.entry(id).or_insert_with(|| blank(id));
                t.rejected += 1;
                if cause == RejectCause::Shed {
                    t.shed += 1;
                }
                *by_cause.entry(cause.label()).or_default() += 1;
            }
            TraceEvent::BatchAdmitted {
                capacity: cap,
                selected,
                ..
            } => {
                batches += 1;
                capacity = capacity.max(cap);
                if cap > 0 {
                    let bucket =
                        ((selected as usize * FILL_BUCKETS) / cap as usize).min(FILL_BUCKETS - 1);
                    fill_hist[bucket] += 1;
                    fill_sum += selected as f64 / cap as f64;
                }
            }
            _ => {}
        }
    }
    let mut tenants: Vec<TenantAdmission> = tenants.into_values().collect();
    tenants.sort_by_key(|t| t.tenant);
    waits.sort_unstable();
    let pct = |p: usize| -> u64 {
        if waits.is_empty() {
            0
        } else {
            waits[(waits.len() - 1) * p / 100]
        }
    };
    AdmissionReport {
        enqueued: tenants.iter().map(|t| t.enqueued).sum(),
        granted: tenants.iter().map(|t| t.granted).sum(),
        rejected: tenants.iter().map(|t| t.rejected).sum(),
        by_cause: RejectCause::ALL
            .iter()
            .map(|c| (c.label(), by_cause.get(c.label()).copied().unwrap_or(0)))
            .collect(),
        tenants,
        batches,
        capacity,
        fill_hist,
        mean_fill: if batches == 0 {
            0.0
        } else {
            fill_sum / batches as f64
        },
        waits: waits.len() as u64,
        p50_wait_ns: pct(50),
        p99_wait_ns: pct(99),
        mean_wait_ns: if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<u64>() as f64 / waits.len() as f64
        },
        max_wait_ns: waits.last().copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ns: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            t_ns,
            slot: 0,
            event,
        }
    }

    fn enq(t: u64, req: u32, tenant: u32) -> TraceRecord {
        rec(
            t,
            TraceEvent::RequestEnqueued {
                req,
                tenant,
                src: req % 4,
                dst: (req + 1) % 4,
            },
        )
    }

    fn grant(t: u64, req: u32, tenant: u32, wait_ns: u64) -> TraceRecord {
        rec(
            t,
            TraceEvent::RequestGranted {
                req,
                tenant,
                src: req % 4,
                dst: (req + 1) % 4,
                wait_ns,
            },
        )
    }

    fn reject(t: u64, req: u32, tenant: u32, cause: RejectCause) -> TraceRecord {
        rec(
            t,
            TraceEvent::RequestRejected {
                req,
                tenant,
                src: req % 4,
                dst: (req + 1) % 4,
                cause,
            },
        )
    }

    fn batch(t: u64, idx: u32, capacity: u32, selected: u32) -> TraceRecord {
        rec(
            t,
            TraceEvent::BatchAdmitted {
                batch: idx,
                capacity,
                selected,
                granted: selected,
                denied: 0,
                pending: 0,
            },
        )
    }

    #[test]
    fn tenants_are_split_and_sorted() {
        let r = admission(&[
            enq(0, 0, 1),
            enq(10, 1, 0),
            grant(100, 0, 1, 100),
            reject(100, 1, 0, RejectCause::Shed),
        ]);
        assert_eq!(r.tenants.len(), 2);
        assert_eq!(r.tenants[0].tenant, 0);
        assert_eq!((r.tenants[0].rejected, r.tenants[0].shed), (1, 1));
        assert_eq!(r.tenants[1].granted, 1);
        assert_eq!(r.enqueued, 2);
        assert!((r.accept_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cause_breakdown_is_in_label_order() {
        let r = admission(&[
            reject(0, 0, 0, RejectCause::RateLimit),
            reject(0, 1, 0, RejectCause::RateLimit),
            reject(0, 2, 0, RejectCause::Expired),
        ]);
        let labels: Vec<&str> = r.by_cause.iter().map(|(c, _)| *c).collect();
        assert_eq!(labels, vec!["expired", "queue-full", "rate-limit", "shed"]);
        assert_eq!(r.by_cause[2].1, 2, "two rate-limit rejects");
        assert_eq!(r.by_cause[0].1, 1, "one expired reject");
    }

    #[test]
    fn fill_histogram_buckets_by_decile() {
        let r = admission(&[
            batch(100, 0, 8, 0), // 0% -> bucket 0
            batch(200, 1, 8, 4), // 50% -> bucket 5
            batch(300, 2, 8, 8), // 100% -> clamped to bucket 9
        ]);
        assert_eq!(r.batches, 3);
        assert_eq!(r.capacity, 8);
        assert_eq!(r.fill_hist[0], 1);
        assert_eq!(r.fill_hist[5], 1);
        assert_eq!(r.fill_hist[9], 1);
        assert!((r.mean_fill - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wait_percentiles_come_from_grants() {
        let recs: Vec<TraceRecord> = (0..100)
            .map(|i| grant(1000, i, 0, (i as u64 + 1) * 10))
            .collect();
        let r = admission(&recs);
        assert_eq!(r.waits, 100);
        assert_eq!(r.p50_wait_ns, 500);
        assert_eq!(r.p99_wait_ns, 990);
        assert_eq!(r.max_wait_ns, 1000);
        assert!((r.mean_wait_ns - 505.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_empty_report() {
        let r = admission(&[]);
        assert!(r.is_empty());
        assert_eq!(r.accept_rate(), 0.0);
        assert!(r.render_text().contains("no admission events"));
        r.to_json().render();
    }

    #[test]
    fn text_names_the_section_and_key_numbers() {
        let text =
            admission(&[enq(0, 0, 2), grant(100, 0, 2, 100), batch(100, 0, 4, 1)]).render_text();
        assert!(text.contains("-- admission --"), "{text}");
        assert!(text.contains("tenant    2"), "{text}");
        assert!(text.contains("queue wait: p50 100 ns"), "{text}");
        assert!(text.contains("fill histogram"), "{text}");
    }
}
