//! Time-series section: summarizes the `metrics-snapshot` stream and
//! re-exports it as CSV.
//!
//! Snapshots are keyed to slot windows (`pms_trace::SnapshotCollector`),
//! so the series — and therefore this section — is a pure function of
//! the record stream: live runs and JSONL replay reconstruct the exact
//! same series. Idle windows are skipped at emission, so `seq` gaps are
//! meaningful and `windows` counts only emitted (non-idle) windows.

use pms_trace::{series_from_records, series_to_csv, Json, Snapshot, TraceRecord};

/// The time-series section of the report.
#[derive(Debug, Clone, Default)]
pub struct TimeseriesReport {
    /// Emitted (non-idle) snapshot windows.
    pub windows: u64,
    /// First window index in the series (0 when empty).
    pub first_seq: u32,
    /// Last window index in the series (0 when empty).
    pub last_seq: u32,
    /// Simulated time covered, first snapshot stamp to last (ns).
    pub span_ns: u64,
    /// Total messages delivered across all windows.
    pub delivered: u64,
    /// Total bytes delivered across all windows.
    pub bytes: u64,
    /// Total connections established across all windows.
    pub established: u64,
    /// Total retries across all windows.
    pub retries: u64,
    /// Total abandoned messages across all windows.
    pub abandoned: u64,
    /// Total fault injections across all windows.
    pub faults_injected: u64,
    /// Window with the most deliveries (seq).
    pub peak_delivered_seq: u32,
    /// Deliveries in that window.
    pub peak_delivered: u32,
    /// Window with the worst setup latency (seq).
    pub peak_setup_seq: u32,
    /// Worst single-setup latency in that window (ns).
    pub peak_setup_ns: u64,
}

/// Builds the time-series section from a record stream.
pub fn timeseries(records: &[TraceRecord]) -> TimeseriesReport {
    summarize(&series_from_records(records))
}

/// Summarizes an already-reconstructed snapshot series.
pub fn summarize(series: &[Snapshot]) -> TimeseriesReport {
    let mut r = TimeseriesReport::default();
    let (Some(first), Some(last)) = (series.first(), series.last()) else {
        return r;
    };
    r.windows = series.len() as u64;
    r.first_seq = first.seq;
    r.last_seq = last.seq;
    r.span_ns = last.t_ns.saturating_sub(first.t_ns);
    for s in series {
        r.delivered += s.delivered as u64;
        r.bytes += s.bytes;
        r.established += s.established as u64;
        r.retries += s.retries as u64;
        r.abandoned += s.abandoned as u64;
        r.faults_injected += s.faults_injected as u64;
        if s.delivered > r.peak_delivered {
            r.peak_delivered = s.delivered;
            r.peak_delivered_seq = s.seq;
        }
        if s.setup_max_ns > r.peak_setup_ns {
            r.peak_setup_ns = s.setup_max_ns;
            r.peak_setup_seq = s.seq;
        }
    }
    r
}

/// CSV export of the full snapshot series found in a record stream.
pub fn timeseries_csv(records: &[TraceRecord]) -> String {
    series_to_csv(&series_from_records(records))
}

impl TimeseriesReport {
    /// JSON rendering (deterministic; used by the report).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("windows", self.windows.into()),
            ("first_seq", self.first_seq.into()),
            ("last_seq", self.last_seq.into()),
            ("span_ns", self.span_ns.into()),
            ("delivered", self.delivered.into()),
            ("bytes", self.bytes.into()),
            ("established", self.established.into()),
            ("retries", self.retries.into()),
            ("abandoned", self.abandoned.into()),
            ("faults_injected", self.faults_injected.into()),
            ("peak_delivered_seq", self.peak_delivered_seq.into()),
            ("peak_delivered", self.peak_delivered.into()),
            ("peak_setup_seq", self.peak_setup_seq.into()),
            ("peak_setup_ns", self.peak_setup_ns.into()),
        ])
    }

    /// Text rendering of the section body.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("-- time series --\n");
        if self.windows == 0 {
            out.push_str("  no metrics snapshots in trace\n");
            return out;
        }
        out.push_str(&format!(
            "  {} windows (seq {}..{}) over {} ns\n",
            self.windows, self.first_seq, self.last_seq, self.span_ns
        ));
        out.push_str(&format!(
            "  delivered {} msgs / {} B, established {}, retries {}, abandoned {}, faults {}\n",
            self.delivered,
            self.bytes,
            self.established,
            self.retries,
            self.abandoned,
            self.faults_injected
        ));
        out.push_str(&format!(
            "  peak: {} msgs in window {}; worst setup {} ns in window {}\n",
            self.peak_delivered, self.peak_delivered_seq, self.peak_setup_ns, self.peak_setup_seq
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pms_trace::TraceEvent;

    fn snap_rec(seq: u32, t_ns: u64, delivered: u32, setup_max_ns: u64) -> TraceRecord {
        TraceRecord {
            t_ns,
            slot: 0,
            event: TraceEvent::MetricsSnapshot {
                seq,
                delivered,
                bytes: delivered as u64 * 64,
                established: 1,
                evicted: 0,
                denied: 0,
                retries: 2,
                abandoned: 0,
                faults_injected: 1,
                faults_cleared: 0,
                setups: 1,
                setup_total_ns: setup_max_ns,
                setup_max_ns,
                passes: 1,
                enqueued: 0,
                granted: 0,
                rejected: 0,
                batches: 0,
            },
        }
    }

    #[test]
    fn empty_trace_summarizes_cleanly() {
        let r = timeseries(&[]);
        assert_eq!(r.windows, 0);
        assert!(r.render_text().contains("no metrics snapshots"));
        r.to_json().render();
    }

    #[test]
    fn totals_and_peaks_accumulate() {
        let recs = vec![
            snap_rec(0, 6400, 3, 100),
            snap_rec(2, 19200, 9, 50),
            snap_rec(5, 38400, 1, 900),
        ];
        let r = timeseries(&recs);
        assert_eq!(r.windows, 3);
        assert_eq!(r.first_seq, 0);
        assert_eq!(r.last_seq, 5);
        assert_eq!(r.span_ns, 32000);
        assert_eq!(r.delivered, 13);
        assert_eq!(r.bytes, 13 * 64);
        assert_eq!(r.retries, 6);
        assert_eq!(r.peak_delivered, 9);
        assert_eq!(r.peak_delivered_seq, 2);
        assert_eq!(r.peak_setup_ns, 900);
        assert_eq!(r.peak_setup_seq, 5);
    }

    #[test]
    fn csv_export_matches_series() {
        let recs = vec![snap_rec(0, 6400, 3, 100), snap_rec(1, 12800, 4, 80)];
        let csv = timeseries_csv(&recs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("seq,t_ns,slot,"));
        assert!(lines[1].starts_with("0,6400,"));
        assert!(lines[2].starts_with("1,12800,"));
    }
}
