//! Slot-occupancy timeline: how full each TDM configuration register is
//! over the run.
//!
//! Occupancy of a slot at a sample point is the fraction of crossbar
//! rows (input ports) carrying an active connection in that slot's
//! configuration. Samples are taken at each `slot-advanced` event — the
//! moments the register actually drives the crossbar, so an always-empty
//! register that the TDM counter skips contributes nothing (exactly the
//! paper's efficiency accounting: skipped slots cost no time).
//!
//! Membership is reconstructed from the connection lifecycle events:
//! `conn-established {slot_idx}` adds a pair to that slot's
//! configuration, `conn-evicted` removes it, and `preload-applied`
//! clears the slot before its new configuration's establishes land (a
//! preload rewrites the whole register; the stream backend does not emit
//! per-pair evictions for the configuration it replaces).

use pms_trace::{Json, TraceEvent, TraceRecord};
use std::collections::HashMap;

/// Blocks for the text sparkline, in increasing fill order.
const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Per-slot cap on the retained `(time, occupancy)` series — the same
/// bound `SimStats` places on exact latency samples, for the same
/// reason: a long run must not grow the analyzer's memory without bound.
/// Past the cap the series becomes a uniform reservoir (Algorithm R).
pub const MAX_SERIES_SAMPLES: usize = 65_536;

/// Fixed seed for the reservoir RNG, per-slot-salted so live and replayed
/// analyses of the same trace sample identically.
const RESERVOIR_SEED: u64 = 0x9aa3_8e12_c0de_5eed;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Occupancy statistics for one TDM slot.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotOccupancy {
    /// The configuration register index.
    pub slot: u32,
    /// Times this slot drove the crossbar (`slot-advanced` count).
    pub samples: u64,
    /// Smallest sampled occupancy fraction.
    pub min: f64,
    /// Mean sampled occupancy fraction.
    pub mean: f64,
    /// Largest sampled occupancy fraction.
    pub max: f64,
    /// Text sparkline of mean occupancy over time buckets (`·` marks a
    /// bucket in which this slot was never active).
    pub sparkline: String,
}

/// The per-slot occupancy report.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyReport {
    /// Crossbar rows used as the occupancy denominator.
    pub ports: usize,
    /// Per-slot statistics, by slot index (only slots that were ever
    /// sampled or configured appear).
    pub slots: Vec<SlotOccupancy>,
    /// Mean occupancy over all samples of all slots.
    pub overall_mean: f64,
    /// Total slot visits across the run.
    pub total_samples: u64,
}

impl OccupancyReport {
    /// JSON rendering (deterministic; used by the report).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("ports", self.ports.into()),
            ("total_samples", self.total_samples.into()),
            ("overall_mean", self.overall_mean.into()),
            (
                "slots",
                Json::Array(
                    self.slots
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("slot", s.slot.into()),
                                ("samples", s.samples.into()),
                                ("min", s.min.into()),
                                ("mean", s.mean.into()),
                                ("max", s.max.into()),
                                ("sparkline", Json::str(s.sparkline.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One slot's accumulating state during the scan.
#[derive(Debug, Clone, Default)]
struct SlotAcc {
    samples: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// (time, occupancy) series for the sparkline; a uniform reservoir
    /// of at most [`MAX_SERIES_SAMPLES`] entries. The sparkline buckets
    /// by timestamp, so the reservoir's arbitrary order is harmless.
    series: Vec<(u64, f64)>,
    /// Reservoir RNG state (seeded per slot).
    rng: u64,
    /// Samples offered to the series so far (reservoir denominator).
    seen: u64,
}

impl SlotAcc {
    /// Algorithm R: keep the first [`MAX_SERIES_SAMPLES`] points exactly,
    /// then replace a uniformly random slot-mate with probability cap/seen.
    fn push_series(&mut self, t: u64, frac: f64) {
        self.seen += 1;
        if self.series.len() < MAX_SERIES_SAMPLES {
            self.series.push((t, frac));
        } else {
            let j = (splitmix64(&mut self.rng) % self.seen) as usize;
            if j < MAX_SERIES_SAMPLES {
                self.series[j] = (t, frac);
            }
        }
    }
}

/// Builds the occupancy report from an event stream.
///
/// `ports` is the occupancy denominator (crossbar rows);
/// `spark_width` the sparkline's column count.
pub fn occupancy(records: &[TraceRecord], ports: usize, spark_width: usize) -> OccupancyReport {
    assert!(ports > 0, "occupancy needs a nonzero port count");
    // (src, dst) -> slot currently holding the connection.
    let mut pair_slot: HashMap<(u32, u32), u32> = HashMap::new();
    // slot -> live connection count.
    let mut live: HashMap<u32, u64> = HashMap::new();
    let mut acc: HashMap<u32, SlotAcc> = HashMap::new();
    for rec in records {
        match rec.event {
            TraceEvent::ConnEstablished { src, dst, slot_idx } => {
                if let Some(prev) = pair_slot.insert((src, dst), slot_idx) {
                    // Re-established elsewhere: leaves its old register.
                    if let Some(n) = live.get_mut(&prev) {
                        *n = n.saturating_sub(1);
                    }
                }
                *live.entry(slot_idx).or_default() += 1;
            }
            TraceEvent::ConnEvicted { src, dst, .. } => {
                if let Some(slot) = pair_slot.remove(&(src, dst)) {
                    if let Some(n) = live.get_mut(&slot) {
                        *n = n.saturating_sub(1);
                    }
                }
            }
            TraceEvent::PreloadApplied { slot_idx, .. } => {
                // The register is rewritten wholesale: drop everything it
                // held (its establishes follow this event in the stream).
                pair_slot.retain(|_, s| *s != slot_idx);
                live.insert(slot_idx, 0);
            }
            TraceEvent::SlotAdvanced { slot_idx } => {
                let n = live.get(&slot_idx).copied().unwrap_or(0);
                let frac = (n as f64 / ports as f64).min(1.0);
                let a = acc.entry(slot_idx).or_insert_with(|| SlotAcc {
                    min: frac,
                    max: frac,
                    rng: RESERVOIR_SEED ^ u64::from(slot_idx),
                    ..SlotAcc::default()
                });
                a.samples += 1;
                a.sum += frac;
                a.min = a.min.min(frac);
                a.max = a.max.max(frac);
                a.push_series(rec.t_ns, frac);
            }
            _ => {}
        }
    }
    let t_end = records.last().map(|r| r.t_ns).unwrap_or(0);
    let mut slots: Vec<SlotOccupancy> = acc
        .into_iter()
        .map(|(slot, a)| SlotOccupancy {
            slot,
            samples: a.samples,
            min: a.min,
            mean: a.sum / a.samples as f64,
            max: a.max,
            sparkline: sparkline(&a.series, t_end, spark_width),
        })
        .collect();
    slots.sort_by_key(|s| s.slot);
    let total_samples: u64 = slots.iter().map(|s| s.samples).sum();
    let overall_mean = if total_samples == 0 {
        0.0
    } else {
        slots.iter().map(|s| s.mean * s.samples as f64).sum::<f64>() / total_samples as f64
    };
    OccupancyReport {
        ports,
        slots,
        overall_mean,
        total_samples,
    }
}

/// Renders a `(time, fraction)` series as a fixed-width text sparkline:
/// each column is the mean of the samples falling in its time bucket.
fn sparkline(series: &[(u64, f64)], t_end: u64, width: usize) -> String {
    if series.is_empty() || width == 0 {
        return String::new();
    }
    let t0 = series[0].0;
    let span = t_end.saturating_sub(t0).max(1);
    let mut sums = vec![0.0f64; width];
    let mut counts = vec![0u64; width];
    for &(t, frac) in series {
        let col = (((t - t0) as u128 * width as u128) / (span as u128 + 1)) as usize;
        let col = col.min(width - 1);
        sums[col] += frac;
        counts[col] += 1;
    }
    (0..width)
        .map(|i| {
            if counts[i] == 0 {
                '·'
            } else {
                let mean = sums[i] / counts[i] as f64;
                let level = (mean * SPARK.len() as f64).ceil() as usize;
                SPARK[level.clamp(1, SPARK.len()) - 1]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ns: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            t_ns,
            slot: 0,
            event,
        }
    }

    fn est(t: u64, src: u32, dst: u32, slot_idx: u32) -> TraceRecord {
        rec(t, TraceEvent::ConnEstablished { src, dst, slot_idx })
    }

    fn adv(t: u64, slot_idx: u32) -> TraceRecord {
        rec(t, TraceEvent::SlotAdvanced { slot_idx })
    }

    #[test]
    fn occupancy_tracks_establish_and_evict() {
        let records = vec![
            est(0, 0, 1, 0),
            est(0, 2, 3, 0),
            adv(100, 0), // 2 of 4 rows -> 0.5
            rec(
                150,
                TraceEvent::ConnEvicted {
                    src: 2,
                    dst: 3,
                    cause: pms_trace::EvictCause::Timeout,
                },
            ),
            adv(200, 0), // 1 of 4 -> 0.25
        ];
        let r = occupancy(&records, 4, 8);
        assert_eq!(r.slots.len(), 1);
        let s = &r.slots[0];
        assert_eq!(s.samples, 2);
        assert_eq!(s.min, 0.25);
        assert_eq!(s.max, 0.5);
        assert!((s.mean - 0.375).abs() < 1e-12);
        assert!((r.overall_mean - 0.375).abs() < 1e-12);
    }

    #[test]
    fn preload_rewrites_the_whole_register() {
        let records = vec![
            est(0, 0, 1, 1),
            est(0, 2, 3, 1),
            adv(100, 1), // 2 live
            rec(
                150,
                TraceEvent::PreloadApplied {
                    slot_idx: 1,
                    connections: 1,
                },
            ),
            est(150, 3, 0, 1),
            adv(200, 1), // old config gone: exactly 1 live
        ];
        let r = occupancy(&records, 4, 8);
        let s = &r.slots[0];
        assert_eq!(s.max, 0.5);
        assert_eq!(s.min, 0.25);
    }

    #[test]
    fn reestablish_in_other_slot_moves_the_pair() {
        let records = vec![
            est(0, 0, 1, 0),
            est(50, 0, 1, 2), // same pair lands in slot 2
            adv(100, 0),      // slot 0 now empty
            adv(200, 2),      // slot 2 holds it
        ];
        let r = occupancy(&records, 2, 4);
        assert_eq!(r.slots[0].max, 0.0);
        assert_eq!(r.slots[1].max, 0.5);
    }

    #[test]
    fn sparkline_is_fixed_width_and_leveled() {
        let series: Vec<(u64, f64)> = (0..100).map(|i| (i * 10, (i % 10) as f64 / 10.0)).collect();
        let s = sparkline(&series, 1000, 16);
        assert_eq!(s.chars().count(), 16);
        assert!(s.chars().all(|c| SPARK.contains(&c) || c == '·'));
        assert_eq!(sparkline(&[], 0, 16), "");
    }

    #[test]
    fn series_reservoir_caps_memory_but_not_exact_stats() {
        // One connection held forever, sampled far past the cap: the
        // retained series is bounded, while samples/min/mean/max stay
        // exact (they accumulate outside the reservoir).
        let total = MAX_SERIES_SAMPLES as u64 + 10_000;
        let mut records = vec![est(0, 0, 1, 0)];
        records.extend((0..total).map(|i| adv(100 + i * 100, 0)));
        let r = occupancy(&records, 4, 8);
        let s = &r.slots[0];
        assert_eq!(s.samples, total);
        assert_eq!(s.min, 0.25);
        assert_eq!(s.max, 0.25);
        assert!((s.mean - 0.25).abs() < 1e-12);
        // The sparkline still spans the whole run (reservoir points are
        // spread uniformly over time, so no column goes dark).
        assert_eq!(s.sparkline.chars().count(), 8);
        assert!(s.sparkline.chars().all(|c| c != '·'));
    }

    #[test]
    fn reservoir_sampling_is_deterministic() {
        let total = MAX_SERIES_SAMPLES as u64 + 5_000;
        let mut records = vec![est(0, 0, 1, 0), est(0, 2, 3, 1)];
        for i in 0..total {
            records.push(adv(100 + i * 200, (i % 2) as u32));
        }
        let a = occupancy(&records, 4, 16);
        let b = occupancy(&records, 4, 16);
        assert_eq!(a, b, "same trace must analyze identically");
    }

    #[test]
    fn below_cap_series_is_exact() {
        // Under the cap the reservoir never kicks in: every sample lands
        // in the series, so the sparkline is built from exact data.
        let records = vec![est(0, 0, 1, 0), adv(100, 0), adv(200, 0), adv(300, 0)];
        let r = occupancy(&records, 4, 4);
        assert_eq!(r.slots[0].samples, 3);
        assert!(r.slots[0].samples < MAX_SERIES_SAMPLES as u64);
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let r = occupancy(&[], 8, 8);
        assert!(r.slots.is_empty());
        assert_eq!(r.total_samples, 0);
        assert_eq!(r.overall_mean, 0.0);
    }
}
