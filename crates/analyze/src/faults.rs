//! Fault-impact accounting: what broke, what it cost, how fast the
//! fabric recovered.
//!
//! Built from the four `pms-faults` trace events. Three questions:
//!
//! * **Exposure** — how much of the run had at least one fault active
//!   (merged over overlapping windows), per fault class.
//! * **Efficiency loss** — delivered bytes per ns inside fault windows
//!   versus outside them. This is the degradation the `degradation`
//!   bench sweeps; here it is measured post-hoc from any trace.
//! * **Recovery latency** — `FaultCleared` to the first
//!   `ConnEstablished` on the same pair, i.e. how long the scheduler
//!   took to rebuild a torn-down pipe once the hardware healed.

use pms_trace::{FaultClass, Json, TraceEvent, TraceRecord};
use std::collections::HashMap;

/// Injection/clear counts for one fault class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassFaults {
    /// The class label.
    pub class: &'static str,
    /// `FaultInjected` events of this class.
    pub injected: u64,
    /// `FaultCleared` events of this class.
    pub cleared: u64,
}

/// The fault-impact report.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultsReport {
    /// Per-class accounting, in [`FaultClass::ALL`] label order.
    pub by_class: Vec<ClassFaults>,
    /// Total fault injections.
    pub injected: u64,
    /// Total fault clears.
    pub cleared: u64,
    /// `MsgRetried` events (dropped grants and failed completions).
    pub msg_retries: u64,
    /// `MsgAbandoned` events (retry budget exhausted).
    pub msgs_abandoned: u64,
    /// Nanoseconds with at least one fault active (windows merged).
    pub fault_ns: u64,
    /// Nanoseconds with no fault active, up to the last trace event.
    pub clean_ns: u64,
    /// Bytes whose delivery completed inside a fault window.
    pub faulted_bytes: u64,
    /// Bytes delivered while no fault was active.
    pub clean_bytes: u64,
    /// Cleared faults whose pair re-established afterwards.
    pub recoveries: u64,
    /// Cleared faults whose pair never re-established in the trace.
    pub unrecovered: u64,
    /// Mean clear-to-reestablish latency over [`recoveries`](Self::recoveries).
    pub mean_recovery_ns: f64,
    /// Worst clear-to-reestablish latency.
    pub max_recovery_ns: u64,
}

impl FaultsReport {
    /// Delivered bytes per ns inside fault windows.
    pub fn faulted_rate(&self) -> f64 {
        if self.fault_ns == 0 {
            0.0
        } else {
            self.faulted_bytes as f64 / self.fault_ns as f64
        }
    }

    /// Delivered bytes per ns outside fault windows.
    pub fn clean_rate(&self) -> f64 {
        if self.clean_ns == 0 {
            0.0
        } else {
            self.clean_bytes as f64 / self.clean_ns as f64
        }
    }

    /// Fractional throughput lost inside fault windows relative to the
    /// clean baseline (0 when the trace has no usable baseline; negative
    /// when faulted windows happened to carry more traffic).
    pub fn efficiency_loss(&self) -> f64 {
        let clean = self.clean_rate();
        if self.fault_ns == 0 || clean == 0.0 {
            0.0
        } else {
            1.0 - self.faulted_rate() / clean
        }
    }

    /// JSON rendering (deterministic; used by the report).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("injected", self.injected.into()),
            ("cleared", self.cleared.into()),
            ("msg_retries", self.msg_retries.into()),
            ("msgs_abandoned", self.msgs_abandoned.into()),
            ("fault_ns", self.fault_ns.into()),
            ("clean_ns", self.clean_ns.into()),
            ("faulted_bytes", self.faulted_bytes.into()),
            ("clean_bytes", self.clean_bytes.into()),
            ("faulted_rate", self.faulted_rate().into()),
            ("clean_rate", self.clean_rate().into()),
            ("efficiency_loss", self.efficiency_loss().into()),
            ("recoveries", self.recoveries.into()),
            ("unrecovered", self.unrecovered.into()),
            ("mean_recovery_ns", self.mean_recovery_ns.into()),
            ("max_recovery_ns", self.max_recovery_ns.into()),
            (
                "by_class",
                Json::Array(
                    self.by_class
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("class", Json::str(c.class)),
                                ("injected", c.injected.into()),
                                ("cleared", c.cleared.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Computes the fault-impact report over an event stream.
///
/// Fault windows are merged by a depth sweep over
/// `FaultInjected`/`FaultCleared`; a fault still active at the last
/// trace event is closed there. Recovery pairs each `FaultCleared` on a
/// link pair (`NicTransient` has none) with the first later
/// `ConnEstablished` of the same pair.
pub fn faults(records: &[TraceRecord]) -> FaultsReport {
    let horizon = records.iter().map(|r| r.t_ns).max().unwrap_or(0);

    let mut class_counts: HashMap<&'static str, (u64, u64)> = HashMap::new();
    let mut msg_retries = 0u64;
    let mut msgs_abandoned = 0u64;

    // Depth sweep for merged fault exposure.
    let mut depth = 0u64;
    let mut window_start = 0u64;
    let mut fault_ns = 0u64;
    let in_window = |windows: &[(u64, u64)], t: u64| {
        // Delivery at the window-end boundary is already clean: windows
        // are [start, end).
        windows.iter().any(|&(s, e)| s <= t && t < e)
    };
    let mut windows: Vec<(u64, u64)> = Vec::new();

    // Recovery pairing: per pair, clears awaiting a re-establish.
    let mut pending: HashMap<(u32, u32), Vec<u64>> = HashMap::new();
    let mut recoveries = 0u64;
    let mut recovery_sum = 0u64;
    let mut max_recovery_ns = 0u64;

    for rec in records {
        match rec.event {
            TraceEvent::FaultInjected { class, .. } => {
                class_counts.entry(class.label()).or_default().0 += 1;
                if depth == 0 {
                    window_start = rec.t_ns;
                }
                depth += 1;
            }
            TraceEvent::FaultCleared {
                class, src, dst, ..
            } => {
                class_counts.entry(class.label()).or_default().1 += 1;
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    fault_ns += rec.t_ns - window_start;
                    windows.push((window_start, rec.t_ns));
                }
                if class != FaultClass::NicTransient {
                    pending.entry((src, dst)).or_default().push(rec.t_ns);
                }
            }
            TraceEvent::ConnEstablished { src, dst, .. } => {
                if let Some(clears) = pending.get_mut(&(src, dst)) {
                    clears.retain(|&c| {
                        if c <= rec.t_ns {
                            let lat = rec.t_ns - c;
                            recoveries += 1;
                            recovery_sum += lat;
                            max_recovery_ns = max_recovery_ns.max(lat);
                            false
                        } else {
                            true
                        }
                    });
                }
            }
            TraceEvent::MsgRetried { .. } => msg_retries += 1,
            TraceEvent::MsgAbandoned { .. } => msgs_abandoned += 1,
            _ => {}
        }
    }
    if depth > 0 {
        fault_ns += horizon - window_start;
        windows.push((window_start, horizon));
    }

    let mut faulted_bytes = 0u64;
    let mut clean_bytes = 0u64;
    for rec in records {
        if let TraceEvent::MsgDelivered { bytes, .. } = rec.event {
            if in_window(&windows, rec.t_ns) {
                faulted_bytes += bytes as u64;
            } else {
                clean_bytes += bytes as u64;
            }
        }
    }

    let by_class: Vec<ClassFaults> = FaultClass::ALL
        .iter()
        .map(|c| {
            let (injected, cleared) = class_counts.get(c.label()).copied().unwrap_or((0, 0));
            ClassFaults {
                class: c.label(),
                injected,
                cleared,
            }
        })
        .collect();
    FaultsReport {
        injected: by_class.iter().map(|c| c.injected).sum(),
        cleared: by_class.iter().map(|c| c.cleared).sum(),
        by_class,
        msg_retries,
        msgs_abandoned,
        fault_ns,
        clean_ns: horizon - fault_ns,
        faulted_bytes,
        clean_bytes,
        recoveries,
        unrecovered: pending.values().map(|v| v.len() as u64).sum(),
        mean_recovery_ns: if recoveries == 0 {
            0.0
        } else {
            recovery_sum as f64 / recoveries as f64
        },
        max_recovery_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ns: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            t_ns,
            slot: 0,
            event,
        }
    }

    fn inject(t: u64, class: FaultClass) -> TraceRecord {
        rec(
            t,
            TraceEvent::FaultInjected {
                fault: 0,
                class,
                src: 0,
                dst: 1,
            },
        )
    }

    fn clear(t: u64, class: FaultClass) -> TraceRecord {
        rec(
            t,
            TraceEvent::FaultCleared {
                fault: 0,
                class,
                src: 0,
                dst: 1,
            },
        )
    }

    fn deliver(t: u64, bytes: u32) -> TraceRecord {
        rec(
            t,
            TraceEvent::MsgDelivered {
                src: 2,
                dst: 3,
                bytes,
                msg: 0,
                latency_ns: 0,
            },
        )
    }

    #[test]
    fn exposure_merges_overlapping_windows() {
        let r = faults(&[
            inject(100, FaultClass::LinkDown),
            inject(200, FaultClass::StuckGrant),
            clear(300, FaultClass::LinkDown),
            clear(500, FaultClass::StuckGrant),
            deliver(1000, 0), // horizon
        ]);
        assert_eq!(r.fault_ns, 400, "one merged [100, 500) window");
        assert_eq!(r.clean_ns, 600);
        assert_eq!(r.injected, 2);
        assert_eq!(r.cleared, 2);
        let ld = r.by_class.iter().find(|c| c.class == "link-down").unwrap();
        assert_eq!((ld.injected, ld.cleared), (1, 1));
    }

    #[test]
    fn never_cleared_fault_extends_to_horizon() {
        let r = faults(&[inject(100, FaultClass::NicTransient), deliver(600, 64)]);
        assert_eq!(r.fault_ns, 500);
        assert_eq!(r.clean_ns, 100);
        assert_eq!(r.unrecovered, 0, "NIC faults have no pipe to rebuild");
    }

    #[test]
    fn efficiency_loss_compares_faulted_and_clean_rates() {
        let r = faults(&[
            deliver(50, 400), // clean: 400 B over [0, 100) ∪ [300, 400)
            inject(100, FaultClass::LinkDown),
            deliver(200, 100), // faulted: 100 B over [100, 300)
            clear(300, FaultClass::LinkDown),
            deliver(400, 0),
        ]);
        assert_eq!(r.faulted_bytes, 100);
        assert_eq!(r.clean_bytes, 400);
        assert!((r.faulted_rate() - 0.5).abs() < 1e-12);
        assert!((r.clean_rate() - 2.0).abs() < 1e-12);
        assert!((r.efficiency_loss() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn recovery_latency_pairs_clear_with_next_establish() {
        let est = |t| {
            rec(
                t,
                TraceEvent::ConnEstablished {
                    src: 0,
                    dst: 1,
                    slot_idx: 0,
                },
            )
        };
        let r = faults(&[
            inject(100, FaultClass::LinkDown),
            clear(300, FaultClass::LinkDown),
            est(450),
            inject(1000, FaultClass::StuckGrant),
            clear(1200, FaultClass::StuckGrant),
            // never re-established
        ]);
        assert_eq!(r.recoveries, 1);
        assert_eq!(r.unrecovered, 1);
        assert_eq!(r.max_recovery_ns, 150);
        assert!((r.mean_recovery_ns - 150.0).abs() < 1e-12);
    }

    #[test]
    fn faultless_trace_is_all_zero() {
        let r = faults(&[deliver(100, 64)]);
        assert_eq!(r.injected, 0);
        assert_eq!(r.fault_ns, 0);
        assert_eq!(r.clean_bytes, 64);
        assert_eq!(r.efficiency_loss(), 0.0);
        assert_eq!(r.by_class.len(), 5);
    }
}
