//! Schedule-quality section: how well a costed schedule uses the fabric.
//!
//! Unlike the other sections this one is not derived from a trace-record
//! stream — a trace cannot reconstruct the schedule that produced it —
//! but from the schedule itself ([`pms_schedopt::CostedSchedule`]) plus,
//! optionally, the `TdmSim` makespan achieved when the schedule was
//! driven through the preloaded-stream backend. It answers the three
//! operator questions about a circuit schedule:
//!
//! * **demand coverage per configuration** — of the bytes a
//!   configuration *could* move while resident (`connections × duration
//!   × payload`), how many did the demand actually fill? Low coverage
//!   means the duration was bought for one elephant and the other ports
//!   idled;
//! * **reconfiguration overhead** — the fraction of the predicted
//!   makespan spent loading registers instead of moving data, the
//!   quantity the submodular solver trades against coverage;
//! * **predicted-vs-simulated error** — how far the cost model's
//!   makespan is from the simulator's, the calibration signal for δ and
//!   the slot payload.

use pms_schedopt::{replay_served, CostModel, CostedSchedule, DemandMatrix};
use pms_trace::Json;

/// Fabric usage of one scheduled configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigCoverage {
    /// Position in the schedule's load order.
    pub index: usize,
    /// Connections in the configuration.
    pub connections: usize,
    /// Slots the configuration stays resident.
    pub duration_slots: u64,
    /// Bytes the configuration drains (replayed, not solver-recorded).
    pub served_bytes: u64,
    /// Bytes it could have drained: `connections × duration × payload`.
    pub capacity_bytes: u64,
}

impl ConfigCoverage {
    /// Served over capacity, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.capacity_bytes == 0 {
            return 0.0;
        }
        self.served_bytes as f64 / self.capacity_bytes as f64
    }
}

/// The schedule-quality report section.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleQualityReport {
    /// Solver that produced the schedule.
    pub solver: String,
    /// Crossbar ports.
    pub ports: usize,
    /// Per-configuration usage, in load order.
    pub configs: Vec<ConfigCoverage>,
    /// Total demand the schedule was solved for.
    pub demand_bytes: u64,
    /// Bytes the circuit entries drain.
    pub served_bytes: u64,
    /// Bytes left to the packet fallback.
    pub residual_bytes: u64,
    /// Slots spent reconfiguring.
    pub reconfig_slots: u64,
    /// Slots spent with a configuration driving the crossbar.
    pub transfer_slots: u64,
    /// Slots the packet fallback needs for the residual.
    pub fallback_slots: u64,
    /// Predicted completion in slots (the schedule's own account).
    pub predicted_makespan_slots: u64,
    /// Predicted completion in ns (`slots × slot_ns`).
    pub predicted_makespan_ns: u64,
    /// Achieved completion from `TdmSim`, when the schedule was driven
    /// through the stream backend (`None` = not simulated).
    pub simulated_makespan_ns: Option<u64>,
}

impl ScheduleQualityReport {
    /// Mean demand coverage across configurations, byte-weighted by
    /// capacity.
    pub fn mean_coverage(&self) -> f64 {
        let cap: u64 = self.configs.iter().map(|c| c.capacity_bytes).sum();
        if cap == 0 {
            return 0.0;
        }
        self.served_bytes as f64 / cap as f64
    }

    /// Fraction of the predicted makespan spent reconfiguring.
    pub fn reconfig_overhead(&self) -> f64 {
        if self.predicted_makespan_slots == 0 {
            return 0.0;
        }
        self.reconfig_slots as f64 / self.predicted_makespan_slots as f64
    }

    /// Signed relative error of the prediction:
    /// `(simulated − predicted) / predicted`. `None` until simulated.
    pub fn makespan_error(&self) -> Option<f64> {
        let sim = self.simulated_makespan_ns?;
        if self.predicted_makespan_ns == 0 {
            return None;
        }
        Some((sim as f64 - self.predicted_makespan_ns as f64) / self.predicted_makespan_ns as f64)
    }

    /// JSON form (used by `results/schedopt.json`).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("solver", Json::str(self.solver.clone())),
            ("ports", Json::from(self.ports)),
            ("demand_bytes", Json::from(self.demand_bytes)),
            ("served_bytes", Json::from(self.served_bytes)),
            ("residual_bytes", Json::from(self.residual_bytes)),
            ("configs", Json::from(self.configs.len())),
            ("reconfig_slots", Json::from(self.reconfig_slots)),
            ("transfer_slots", Json::from(self.transfer_slots)),
            ("fallback_slots", Json::from(self.fallback_slots)),
            ("mean_coverage", Json::from(self.mean_coverage())),
            ("reconfig_overhead", Json::from(self.reconfig_overhead())),
            (
                "predicted_makespan_slots",
                Json::from(self.predicted_makespan_slots),
            ),
            (
                "predicted_makespan_ns",
                Json::from(self.predicted_makespan_ns),
            ),
        ];
        if let Some(sim) = self.simulated_makespan_ns {
            fields.push(("simulated_makespan_ns", Json::from(sim)));
        }
        if let Some(err) = self.makespan_error() {
            fields.push(("makespan_error", Json::from(err)));
        }
        Json::obj(fields)
    }

    /// Terminal rendering, one block per schedule.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "schedule quality — {} ({} ports)\n",
            self.solver, self.ports
        ));
        out.push_str(&format!(
            "  {} configs, {} demand bytes ({} circuit, {} fallback)\n",
            self.configs.len(),
            self.demand_bytes,
            self.served_bytes,
            self.residual_bytes
        ));
        out.push_str(&format!(
            "  coverage {:.1}%, reconfig overhead {:.1}% ({} of {} slots)\n",
            self.mean_coverage() * 100.0,
            self.reconfig_overhead() * 100.0,
            self.reconfig_slots,
            self.predicted_makespan_slots
        ));
        match (self.simulated_makespan_ns, self.makespan_error()) {
            (Some(sim), Some(err)) => out.push_str(&format!(
                "  predicted {} ns, simulated {} ns ({:+.1}% error)\n",
                self.predicted_makespan_ns,
                sim,
                err * 100.0
            )),
            _ => out.push_str(&format!(
                "  predicted {} ns (not simulated)\n",
                self.predicted_makespan_ns
            )),
        }
        for c in &self.configs {
            out.push_str(&format!(
                "    cfg {:>3}: {:>3} conns x {:>6} slots, {:>10} B served, {:>5.1}% coverage\n",
                c.index,
                c.connections,
                c.duration_slots,
                c.served_bytes,
                c.coverage() * 100.0
            ));
        }
        out
    }
}

/// Builds the schedule-quality section. `slot_ns` converts slot counts
/// to time; pass the simulated makespan once the schedule has been
/// driven through `TdmSim::with_config_stream`.
pub fn schedule_quality(
    demand: &DemandMatrix,
    cost: &CostModel,
    sched: &CostedSchedule,
    slot_ns: u64,
    simulated_makespan_ns: Option<u64>,
) -> ScheduleQualityReport {
    let (per_entry, residual) = replay_served(demand, cost, sched);
    let configs: Vec<ConfigCoverage> = sched
        .entries
        .iter()
        .zip(&per_entry)
        .enumerate()
        .map(|(index, (e, served))| {
            let connections = served.len();
            ConfigCoverage {
                index,
                connections,
                duration_slots: e.duration_slots,
                served_bytes: served.iter().map(|&(_, _, b)| b).sum(),
                capacity_bytes: connections as u64 * e.duration_slots * cost.slot_payload_bytes,
            }
        })
        .collect();
    let served_bytes = configs.iter().map(|c| c.served_bytes).sum();
    let reconfig_slots = sched.reconfig_slots(cost);
    let transfer_slots = sched.transfer_slots();
    let fallback_slots = cost.fallback_slots(residual);
    ScheduleQualityReport {
        solver: sched.solver.clone(),
        ports: sched.ports,
        configs,
        demand_bytes: demand.total_bytes(),
        served_bytes,
        residual_bytes: residual,
        reconfig_slots,
        transfer_slots,
        fallback_slots,
        predicted_makespan_slots: sched.predicted_makespan_slots,
        predicted_makespan_ns: sched.predicted_makespan_slots * slot_ns,
        simulated_makespan_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pms_schedopt::{coloring_schedule, submodular_schedule, ColoringKind};

    fn demand() -> DemandMatrix {
        DemandMatrix::from_flows(
            8,
            [
                (0usize, 5usize, 64u64),
                (4, 1, 64),
                (4, 5, 6_400),
                (6, 5, 64),
                (6, 7, 6_400),
            ],
        )
    }

    #[test]
    fn report_accounts_for_every_byte() {
        let d = demand();
        let cost = CostModel::with_delta(4);
        let s = submodular_schedule(&d, &cost);
        let r = schedule_quality(&d, &cost, &s, 100, None);
        assert_eq!(r.solver, "submodular");
        assert_eq!(r.demand_bytes, d.total_bytes());
        assert_eq!(r.served_bytes + r.residual_bytes, r.demand_bytes);
        assert_eq!(r.configs.len(), s.entries.len());
        assert_eq!(r.predicted_makespan_ns, s.predicted_makespan_slots * 100);
        assert!(r.mean_coverage() > 0.0 && r.mean_coverage() <= 1.0);
        assert!(r.reconfig_overhead() > 0.0 && r.reconfig_overhead() < 1.0);
        assert_eq!(r.makespan_error(), None);
        assert!(r.render_text().contains("not simulated"));
    }

    #[test]
    fn simulated_makespan_yields_signed_error() {
        let d = demand();
        let cost = CostModel::with_delta(4);
        let s = coloring_schedule(&d, &cost, ColoringKind::Greedy);
        let sim_ns = s.predicted_makespan_slots * 100 * 2;
        let r = schedule_quality(&d, &cost, &s, 100, Some(sim_ns));
        let err = r.makespan_error().unwrap();
        assert!((err - 1.0).abs() < 1e-9, "exactly 2x predicted: {err}");
        assert!(r.render_text().contains("% error"));
        let json = r.to_json();
        assert!(json.get("simulated_makespan_ns").is_some());
        assert!(json.get("makespan_error").is_some());
        assert_eq!(
            json.get("solver").and_then(|j| j.as_str()),
            Some("coloring-greedy")
        );
    }

    #[test]
    fn coverage_flags_wasted_duration() {
        // An elephant sharing a config with a mouse: the mouse's port
        // idles for nearly the whole duration, so coverage is ~50%.
        let d = DemandMatrix::from_flows(4, [(0, 1, 6_400), (2, 3, 64)]);
        let cost = CostModel::with_delta(4);
        let s = coloring_schedule(&d, &cost, ColoringKind::Exact);
        let r = schedule_quality(&d, &cost, &s, 100, None);
        assert_eq!(r.configs.len(), 1);
        let c = &r.configs[0];
        assert_eq!(c.connections, 2);
        assert_eq!(c.duration_slots, 100);
        assert!(c.coverage() < 0.51, "coverage {}", c.coverage());
    }
}
