//! Replaying JSONL trace files back into typed [`TraceRecord`]s.
//!
//! The inverse of [`pms_trace::record_json`]: each line is parsed with
//! the hand-rolled JSON parser and matched on its `kind`. Lines with an
//! unknown kind (e.g. the flight recorder's `flight-trigger` markers, or
//! kinds added by a newer writer) are *skipped and counted*, not
//! errors — a replay tool must be able to read traces from its future.
//! Malformed JSON or a known kind with missing fields is an error: that
//! trace is corrupt, and silently dropping records would skew every
//! derived metric.

use pms_trace::{EvictCause, FaultClass, Json, RejectCause, TraceEvent, TraceRecord};

/// The outcome of replaying a JSONL document.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Records in file order.
    pub records: Vec<TraceRecord>,
    /// Lines skipped because their `kind` was not recognized.
    pub skipped_unknown: u64,
}

/// Parses one JSONL line. Returns `Ok(None)` for unknown kinds.
pub fn parse_line(line: &str) -> Result<Option<TraceRecord>, String> {
    let v = Json::parse(line).map_err(|e| e.to_string())?;
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing `kind` field")?;
    let field = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("`{kind}` record missing integer field `{name}`"))
    };
    let field32 = |name: &str| -> Result<u32, String> { field(name).map(|x| x as u32) };
    let event = match kind {
        "msg-injected" => TraceEvent::MsgInjected {
            src: field32("src")?,
            dst: field32("dst")?,
            bytes: field32("bytes")?,
            msg: field32("msg")?,
        },
        "msg-delivered" => TraceEvent::MsgDelivered {
            src: field32("src")?,
            dst: field32("dst")?,
            bytes: field32("bytes")?,
            msg: field32("msg")?,
            latency_ns: field("latency_ns")?,
        },
        "conn-requested" => TraceEvent::ConnRequested {
            src: field32("src")?,
            dst: field32("dst")?,
        },
        "conn-established" => TraceEvent::ConnEstablished {
            src: field32("src")?,
            dst: field32("dst")?,
            slot_idx: field32("slot_idx")?,
        },
        "conn-evicted" => {
            let label = v
                .get("cause")
                .and_then(Json::as_str)
                .ok_or("`conn-evicted` record missing `cause`")?;
            TraceEvent::ConnEvicted {
                src: field32("src")?,
                dst: field32("dst")?,
                cause: EvictCause::from_label(label)
                    .ok_or_else(|| format!("unknown eviction cause `{label}`"))?,
            }
        }
        "slot-advanced" => TraceEvent::SlotAdvanced {
            slot_idx: field32("slot_idx")?,
        },
        "sched-pass" => TraceEvent::SchedPass {
            passes: field("passes")?,
            ripple_depth: field32("ripple_depth")?,
            established: field32("established")?,
            released: field32("released")?,
            denied: field32("denied")?,
        },
        "preload-applied" => TraceEvent::PreloadApplied {
            slot_idx: field32("slot_idx")?,
            connections: field32("connections")?,
        },
        "phase-flush" => TraceEvent::PhaseFlush {
            cleared: field32("cleared")?,
        },
        "fault-injected" | "fault-cleared" => {
            let label = v
                .get("class")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("`{kind}` record missing `class`"))?;
            let class = FaultClass::from_label(label)
                .ok_or_else(|| format!("unknown fault class `{label}`"))?;
            let (fault, src, dst) = (field32("fault")?, field32("src")?, field32("dst")?);
            if kind == "fault-injected" {
                TraceEvent::FaultInjected {
                    fault,
                    class,
                    src,
                    dst,
                }
            } else {
                TraceEvent::FaultCleared {
                    fault,
                    class,
                    src,
                    dst,
                }
            }
        }
        "msg-retried" => TraceEvent::MsgRetried {
            src: field32("src")?,
            dst: field32("dst")?,
            msg: field32("msg")?,
            attempt: field32("attempt")?,
        },
        "msg-abandoned" => TraceEvent::MsgAbandoned {
            src: field32("src")?,
            dst: field32("dst")?,
            msg: field32("msg")?,
            retries: field32("retries")?,
        },
        "span-start" | "span-end" => {
            let label = v
                .get("phase")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("`{kind}` record missing `phase`"))?;
            let phase = pms_trace::SpanPhase::from_label(label)
                .ok_or_else(|| format!("unknown span phase `{label}`"))?;
            if kind == "span-start" {
                TraceEvent::SpanStart {
                    span: field32("span")?,
                    parent: field32("parent")?,
                    phase,
                    msg: field32("msg")?,
                    src: field32("src")?,
                    dst: field32("dst")?,
                }
            } else {
                TraceEvent::SpanEnd {
                    span: field32("span")?,
                    phase,
                    msg: field32("msg")?,
                }
            }
        }
        "request-enqueued" => TraceEvent::RequestEnqueued {
            req: field32("req")?,
            tenant: field32("tenant")?,
            src: field32("src")?,
            dst: field32("dst")?,
        },
        "request-granted" => TraceEvent::RequestGranted {
            req: field32("req")?,
            tenant: field32("tenant")?,
            src: field32("src")?,
            dst: field32("dst")?,
            wait_ns: field("wait_ns")?,
        },
        "request-rejected" => {
            let label = v
                .get("cause")
                .and_then(Json::as_str)
                .ok_or("`request-rejected` record missing `cause`")?;
            TraceEvent::RequestRejected {
                req: field32("req")?,
                tenant: field32("tenant")?,
                src: field32("src")?,
                dst: field32("dst")?,
                cause: RejectCause::from_label(label)
                    .ok_or_else(|| format!("unknown reject cause `{label}`"))?,
            }
        }
        "batch-admitted" => TraceEvent::BatchAdmitted {
            batch: field32("batch")?,
            capacity: field32("capacity")?,
            selected: field32("selected")?,
            granted: field32("granted")?,
            denied: field32("denied")?,
            pending: field32("pending")?,
        },
        "metrics-snapshot" => TraceEvent::MetricsSnapshot {
            seq: field32("seq")?,
            delivered: field32("delivered")?,
            bytes: field("bytes")?,
            established: field32("established")?,
            evicted: field32("evicted")?,
            denied: field32("denied")?,
            retries: field32("retries")?,
            abandoned: field32("abandoned")?,
            faults_injected: field32("faults_injected")?,
            faults_cleared: field32("faults_cleared")?,
            setups: field32("setups")?,
            setup_total_ns: field("setup_total_ns")?,
            setup_max_ns: field("setup_max_ns")?,
            passes: field32("passes")?,
            enqueued: field32("enqueued")?,
            granted: field32("granted")?,
            rejected: field32("rejected")?,
            batches: field32("batches")?,
        },
        "alert-raised" => TraceEvent::AlertRaised {
            rule: field32("rule")?,
            seq: field32("seq")?,
            value: field("value")?,
            threshold: field("threshold")?,
        },
        "alert-cleared" => TraceEvent::AlertCleared {
            rule: field32("rule")?,
            seq: field32("seq")?,
        },
        _ => return Ok(None),
    };
    Ok(Some(TraceRecord {
        t_ns: field("t_ns")?,
        slot: field32("slot")?,
        event,
    }))
}

/// Replays a whole JSONL document (one record per non-empty line).
/// Errors carry the 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Replay, String> {
    let mut out = Replay::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))? {
            Some(rec) => out.records.push(rec),
            None => out.skipped_unknown += 1,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pms_trace::record_json;

    fn sample_records() -> Vec<TraceRecord> {
        let mk = |t_ns, slot, event| TraceRecord { t_ns, slot, event };
        vec![
            mk(
                0,
                0,
                TraceEvent::MsgInjected {
                    src: 3,
                    dst: 7,
                    bytes: 512,
                    msg: 0,
                },
            ),
            mk(80, 0, TraceEvent::ConnRequested { src: 3, dst: 7 }),
            mk(
                160,
                1,
                TraceEvent::SchedPass {
                    passes: 2,
                    ripple_depth: 5,
                    established: 1,
                    released: 0,
                    denied: 2,
                },
            ),
            mk(
                160,
                1,
                TraceEvent::ConnEstablished {
                    src: 3,
                    dst: 7,
                    slot_idx: 1,
                },
            ),
            mk(200, 1, TraceEvent::SlotAdvanced { slot_idx: 1 }),
            mk(
                u64::MAX,
                2,
                TraceEvent::MsgDelivered {
                    src: 3,
                    dst: 7,
                    bytes: 512,
                    msg: 0,
                    latency_ns: u64::MAX - 1,
                },
            ),
            mk(
                300,
                2,
                TraceEvent::PreloadApplied {
                    slot_idx: 2,
                    connections: 16,
                },
            ),
            mk(
                400,
                0,
                TraceEvent::ConnEvicted {
                    src: 3,
                    dst: 7,
                    cause: EvictCause::RefCount,
                },
            ),
            mk(500, 0, TraceEvent::PhaseFlush { cleared: 9 }),
            mk(
                600,
                1,
                TraceEvent::FaultInjected {
                    fault: 2,
                    class: pms_trace::FaultClass::LinkDown,
                    src: 3,
                    dst: 7,
                },
            ),
            mk(
                650,
                1,
                TraceEvent::MsgRetried {
                    src: 3,
                    dst: 7,
                    msg: 0,
                    attempt: 1,
                },
            ),
            mk(
                700,
                2,
                TraceEvent::MsgAbandoned {
                    src: 3,
                    dst: 7,
                    msg: 0,
                    retries: 4,
                },
            ),
            mk(
                800,
                2,
                TraceEvent::FaultCleared {
                    fault: 2,
                    class: pms_trace::FaultClass::LinkDown,
                    src: 3,
                    dst: 7,
                },
            ),
            mk(
                900,
                0,
                TraceEvent::SpanStart {
                    span: 1,
                    parent: u32::MAX,
                    phase: pms_trace::SpanPhase::Msg,
                    msg: 0,
                    src: 3,
                    dst: 7,
                },
            ),
            mk(
                950,
                0,
                TraceEvent::SpanEnd {
                    span: 1,
                    phase: pms_trace::SpanPhase::Msg,
                    msg: 0,
                },
            ),
            mk(
                960,
                0,
                TraceEvent::RequestEnqueued {
                    req: 9,
                    tenant: 2,
                    src: 3,
                    dst: 7,
                },
            ),
            mk(
                970,
                0,
                TraceEvent::RequestGranted {
                    req: 9,
                    tenant: 2,
                    src: 3,
                    dst: 7,
                    wait_ns: 10,
                },
            ),
            mk(
                980,
                0,
                TraceEvent::RequestRejected {
                    req: 10,
                    tenant: 2,
                    src: 3,
                    dst: 7,
                    cause: pms_trace::RejectCause::Shed,
                },
            ),
            mk(
                990,
                0,
                TraceEvent::BatchAdmitted {
                    batch: 4,
                    capacity: 8,
                    selected: 5,
                    granted: 4,
                    denied: 1,
                    pending: 3,
                },
            ),
            mk(
                1000,
                1,
                TraceEvent::MetricsSnapshot {
                    seq: 3,
                    delivered: 2,
                    bytes: 1024,
                    established: 1,
                    evicted: 1,
                    denied: 2,
                    retries: 1,
                    abandoned: 1,
                    faults_injected: 1,
                    faults_cleared: 1,
                    setups: 1,
                    setup_total_ns: 80,
                    setup_max_ns: 80,
                    passes: 2,
                    enqueued: 1,
                    granted: 1,
                    rejected: 1,
                    batches: 1,
                },
            ),
            mk(
                1000,
                1,
                TraceEvent::AlertRaised {
                    rule: 1,
                    seq: 3,
                    value: u64::MAX,
                    threshold: u64::MAX - 2,
                },
            ),
            mk(1100, 1, TraceEvent::AlertCleared { rule: 1, seq: 4 }),
        ]
    }

    #[test]
    fn every_kind_roundtrips_through_jsonl() {
        let records = sample_records();
        let text: String = records
            .iter()
            .map(|r| record_json(r).render() + "\n")
            .collect();
        let replay = parse_jsonl(&text).unwrap();
        assert_eq!(replay.records, records);
        assert_eq!(replay.skipped_unknown, 0);
    }

    #[test]
    fn unknown_kinds_are_skipped_not_fatal() {
        let text = "{\"kind\":\"flight-trigger\",\"t_ns\":1,\"slot\":0}\n\
                    {\"kind\":\"slot-advanced\",\"t_ns\":5,\"slot\":2,\"slot_idx\":2}\n";
        let replay = parse_jsonl(text).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.skipped_unknown, 1);
    }

    #[test]
    fn corrupt_lines_are_errors_with_line_numbers() {
        let good = "{\"kind\":\"slot-advanced\",\"t_ns\":5,\"slot\":2,\"slot_idx\":2}";
        let err = parse_jsonl(&format!("{good}\n{{truncated")).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        // A known kind missing a required field is also corrupt.
        let err = parse_jsonl("{\"kind\":\"conn-requested\",\"t_ns\":1,\"slot\":0}").unwrap_err();
        assert!(err.contains("missing integer field `src`"), "{err}");
        // An unknown eviction cause is corrupt (causes are a closed set).
        let bad =
            "{\"kind\":\"conn-evicted\",\"t_ns\":1,\"slot\":0,\"src\":0,\"dst\":1,\"cause\":\"x\"}";
        assert!(parse_jsonl(bad).unwrap_err().contains("eviction cause"));
        // An unknown fault class is corrupt too (classes are a closed set).
        let bad = "{\"kind\":\"fault-injected\",\"t_ns\":1,\"slot\":0,\
                   \"fault\":0,\"class\":\"gremlin\",\"src\":0,\"dst\":1}";
        assert!(parse_jsonl(bad).unwrap_err().contains("fault class"));
        // An unknown reject cause is corrupt (causes are a closed set).
        let bad = "{\"kind\":\"request-rejected\",\"t_ns\":1,\"slot\":0,\
                   \"req\":0,\"tenant\":0,\"src\":0,\"dst\":1,\"cause\":\"vibes\"}";
        assert!(parse_jsonl(bad).unwrap_err().contains("reject cause"));
        // An unknown span phase is corrupt as well.
        let bad = "{\"kind\":\"span-end\",\"t_ns\":1,\"slot\":0,\
                   \"span\":1,\"phase\":\"warp\",\"msg\":0}";
        assert!(parse_jsonl(bad).unwrap_err().contains("span phase"));
    }

    #[test]
    fn blank_lines_are_ignored() {
        let replay = parse_jsonl("\n\n").unwrap();
        assert!(replay.records.is_empty());
    }
}
