//! Run diffing: compares two reports metric-by-metric and renders a
//! deterministic delta table.
//!
//! `analyze --diff a.jsonl b.jsonl` builds a [`Report`] from each trace
//! and diffs them here: per-event-kind count deltas, per-span-phase
//! quantile shifts, and section totals, each flagged when the relative
//! change exceeds a significance threshold. Diffing a run against
//! itself reports zero deltas ([`DiffReport::is_zero`]) — CI leans on
//! that as a determinism check.
//!
//! The module also hosts the generic ratio-table formatter that
//! `bench_baseline --check` uses for its per-kernel regression report.

use crate::report::Report;
use pms_trace::Json;

/// Default relative-change threshold for the significance flag.
pub const DEFAULT_EPSILON: f64 = 0.05;

/// One compared metric.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Metric name, e.g. `events.msg-delivered` or `phase.align.p99_ns`.
    pub name: String,
    /// Value in run A.
    pub a: u64,
    /// Value in run B.
    pub b: u64,
}

impl MetricDelta {
    fn new(name: impl Into<String>, a: u64, b: u64) -> Self {
        MetricDelta {
            name: name.into(),
            a,
            b,
        }
    }

    /// Signed difference `b - a`.
    pub fn delta(&self) -> i128 {
        self.b as i128 - self.a as i128
    }

    /// Relative change `(b - a) / a`; infinite when a is zero and b is
    /// not, zero when both are zero.
    pub fn rel(&self) -> f64 {
        if self.a == 0 {
            if self.b == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.b as f64 - self.a as f64) / self.a as f64
        }
    }

    /// True when the relative change is at least `epsilon`.
    pub fn significant(&self, epsilon: f64) -> bool {
        self.a != self.b && (self.rel().is_infinite() || self.rel().abs() >= epsilon)
    }
}

/// The assembled diff of two reports.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Significance threshold used by the `!` flag.
    pub epsilon: f64,
    /// Per-event-kind record counts (union of both runs' kinds).
    pub counts: Vec<MetricDelta>,
    /// Section totals: churn, faults, time series, alerts, traffic.
    pub metrics: Vec<MetricDelta>,
    /// Per-span-phase count/p50/p99 rows.
    pub phases: Vec<MetricDelta>,
}

/// Diffs two reports. Rows are emitted in a fixed order (sorted event
/// kinds, then section totals, then phases in report order) so the
/// rendering is deterministic.
pub fn diff_reports(a: &Report, b: &Report, epsilon: f64) -> DiffReport {
    let mut counts = vec![MetricDelta::new("records", a.records, b.records)];
    let mut kinds: Vec<&'static str> = a
        .event_counts
        .iter()
        .chain(b.event_counts.iter())
        .map(|(k, _)| *k)
        .collect();
    kinds.sort_unstable();
    kinds.dedup();
    let count_of = |r: &Report, kind: &str| -> u64 {
        r.event_counts
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    for kind in kinds {
        counts.push(MetricDelta::new(
            format!("events.{kind}"),
            count_of(a, kind),
            count_of(b, kind),
        ));
    }

    let metrics = vec![
        MetricDelta::new(
            "traffic.msgs",
            a.heatmap.total_msgs(),
            b.heatmap.total_msgs(),
        ),
        MetricDelta::new(
            "traffic.bytes",
            a.heatmap.total_bytes(),
            b.heatmap.total_bytes(),
        ),
        MetricDelta::new(
            "churn.evictions",
            a.churn.total_evictions,
            b.churn.total_evictions,
        ),
        MetricDelta::new(
            "churn.premature",
            a.churn.total_premature,
            b.churn.total_premature,
        ),
        MetricDelta::new(
            "setup.count",
            a.contention.setup.setups,
            b.contention.setup.setups,
        ),
        MetricDelta::new(
            "setup.max_wait_ns",
            a.contention.setup.max_wait_ns,
            b.contention.setup.max_wait_ns,
        ),
        MetricDelta::new("faults.injected", a.faults.injected, b.faults.injected),
        MetricDelta::new("faults.retries", a.faults.msg_retries, b.faults.msg_retries),
        MetricDelta::new(
            "faults.abandoned",
            a.faults.msgs_abandoned,
            b.faults.msgs_abandoned,
        ),
        MetricDelta::new("faults.fault_ns", a.faults.fault_ns, b.faults.fault_ns),
        MetricDelta::new(
            "timeseries.windows",
            a.timeseries.windows,
            b.timeseries.windows,
        ),
        MetricDelta::new(
            "timeseries.delivered",
            a.timeseries.delivered,
            b.timeseries.delivered,
        ),
        MetricDelta::new(
            "timeseries.peak_setup_ns",
            a.timeseries.peak_setup_ns,
            b.timeseries.peak_setup_ns,
        ),
        MetricDelta::new("alerts.raises", a.alerts.raises, b.alerts.raises),
        MetricDelta::new("alerts.clears", a.alerts.clears, b.alerts.clears),
    ];

    let mut phases = Vec::new();
    let mut labels: Vec<&'static str> = a
        .spans
        .phases
        .iter()
        .chain(b.spans.phases.iter())
        .map(|p| p.phase)
        .collect();
    labels.dedup();
    let phase_of = |r: &Report, label: &str| -> (u64, u64, u64) {
        r.spans
            .phases
            .iter()
            .find(|p| p.phase == label)
            .map(|p| (p.count, p.p50_ns, p.p99_ns))
            .unwrap_or((0, 0, 0))
    };
    for label in labels {
        let (ca, p50a, p99a) = phase_of(a, label);
        let (cb, p50b, p99b) = phase_of(b, label);
        phases.push(MetricDelta::new(format!("phase.{label}.count"), ca, cb));
        phases.push(MetricDelta::new(
            format!("phase.{label}.p50_ns"),
            p50a,
            p50b,
        ));
        phases.push(MetricDelta::new(
            format!("phase.{label}.p99_ns"),
            p99a,
            p99b,
        ));
    }

    DiffReport {
        epsilon,
        counts,
        metrics,
        phases,
    }
}

impl DiffReport {
    /// All rows, in rendering order.
    pub fn rows(&self) -> impl Iterator<Item = &MetricDelta> {
        self.counts
            .iter()
            .chain(self.metrics.iter())
            .chain(self.phases.iter())
    }

    /// True when every metric is identical between the two runs.
    pub fn is_zero(&self) -> bool {
        self.rows().all(|r| r.a == r.b)
    }

    /// Rows whose relative change meets the significance threshold.
    pub fn significant(&self) -> Vec<&MetricDelta> {
        self.rows()
            .filter(|r| r.significant(self.epsilon))
            .collect()
    }

    /// JSON rendering (deterministic).
    pub fn to_json(&self) -> Json {
        let rows = |v: &[MetricDelta]| {
            Json::Array(
                v.iter()
                    .map(|r| {
                        Json::obj([
                            ("name", Json::Str(r.name.clone())),
                            ("a", r.a.into()),
                            ("b", r.b.into()),
                            ("delta", Json::Int(r.delta() as i64)),
                            ("significant", Json::Bool(r.significant(self.epsilon))),
                        ])
                    })
                    .collect(),
            )
        };
        Json::obj([
            ("epsilon", self.epsilon.into()),
            ("zero", Json::Bool(self.is_zero())),
            ("counts", rows(&self.counts)),
            ("metrics", rows(&self.metrics)),
            ("phases", rows(&self.phases)),
        ])
    }

    /// Human-readable delta table. Significant rows carry a `!` marker.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== run diff (significance threshold {:.1}%) ==\n",
            self.epsilon * 100.0
        ));
        if self.is_zero() {
            out.push_str("  runs are identical: zero deltas across all metrics\n");
            return out;
        }
        let section = |title: &str, rows: &[MetricDelta], out: &mut String| {
            let changed: Vec<&MetricDelta> = rows.iter().filter(|r| r.a != r.b).collect();
            out.push_str(&format!("-- {title} ({} changed) --\n", changed.len()));
            for r in changed {
                let rel = r.rel();
                let rel_str = if rel.is_infinite() {
                    "   new".to_string()
                } else {
                    format!("{:+6.1}%", rel * 100.0)
                };
                out.push_str(&format!(
                    "  {} {:<26} {:>12} -> {:>12}  ({:>+12}, {rel_str})\n",
                    if r.significant(self.epsilon) {
                        "!"
                    } else {
                        " "
                    },
                    r.name,
                    r.a,
                    r.b,
                    r.delta(),
                ));
            }
        };
        section("event counts", &self.counts, &mut out);
        section("section totals", &self.metrics, &mut out);
        section("span phases", &self.phases, &mut out);
        let sig = self.significant().len();
        out.push_str(&format!("  {} significant change(s)\n", sig));
        out
    }
}

/// One row of a ratio table: a named quantity measured in a baseline
/// (`a`) and a current (`b`) configuration.
#[derive(Debug, Clone)]
pub struct RatioRow {
    /// Row label (kernel name, metric name, ...).
    pub name: String,
    /// Baseline value.
    pub a: f64,
    /// Current value.
    pub b: f64,
}

impl RatioRow {
    /// `b / a`; 1.0 when both are zero, infinite when only `a` is.
    pub fn ratio(&self) -> f64 {
        if self.a == 0.0 {
            if self.b == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.b / self.a
        }
    }
}

/// Renders a fixed-width ratio table. Rows whose ratio falls below
/// `1 - tolerance` (a regression) are marked with `!`.
pub fn render_ratio_table(
    headers: (&str, &str, &str),
    rows: &[RatioRow],
    tolerance: f64,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  {:<28} {:>12} {:>12} {:>8}\n",
        headers.0, headers.1, headers.2, "ratio"
    ));
    for r in rows {
        out.push_str(&format!(
            "{} {:<28} {:>12.3} {:>12.3} {:>8.3}\n",
            if r.ratio() < 1.0 - tolerance {
                "!"
            } else {
                " "
            },
            r.name,
            r.a,
            r.b,
            r.ratio()
        ));
    }
    out
}

/// The worst regression in a row set: the row with the smallest ratio
/// below `1 - tolerance`, if any.
pub fn worst_regression(rows: &[RatioRow], tolerance: f64) -> Option<&RatioRow> {
    rows.iter()
        .filter(|r| r.ratio() < 1.0 - tolerance)
        .min_by(|x, y| x.ratio().total_cmp(&y.ratio()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{build_report, ReportConfig};
    use pms_trace::{TraceEvent, TraceRecord};

    fn trace(n: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                t_ns: i * 100,
                slot: 0,
                event: TraceEvent::MsgDelivered {
                    src: 0,
                    dst: 1,
                    bytes: 64,
                    msg: i as u32,
                    latency_ns: 50 + i,
                },
            })
            .collect()
    }

    #[test]
    fn self_diff_is_zero() {
        let r = build_report(&trace(10), &ReportConfig::default());
        let d = diff_reports(&r, &r, DEFAULT_EPSILON);
        assert!(d.is_zero());
        assert!(d.significant().is_empty());
        assert!(d.render_text().contains("zero deltas"));
    }

    #[test]
    fn changed_counts_are_flagged() {
        let a = build_report(&trace(10), &ReportConfig::default());
        let b = build_report(&trace(20), &ReportConfig::default());
        let d = diff_reports(&a, &b, DEFAULT_EPSILON);
        assert!(!d.is_zero());
        let row = d
            .counts
            .iter()
            .find(|r| r.name == "events.msg-delivered")
            .unwrap();
        assert_eq!(row.a, 10);
        assert_eq!(row.b, 20);
        assert_eq!(row.delta(), 10);
        assert!(row.significant(DEFAULT_EPSILON));
        assert!(d.render_text().contains("events.msg-delivered"));
    }

    #[test]
    fn small_changes_are_not_significant() {
        let m = MetricDelta::new("x", 1000, 1009);
        assert!(!m.significant(0.05));
        assert!(m.significant(0.001));
        let new = MetricDelta::new("y", 0, 3);
        assert!(new.significant(0.05));
        assert!(new.rel().is_infinite());
    }

    #[test]
    fn diff_json_is_deterministic() {
        let a = build_report(&trace(5), &ReportConfig::default());
        let b = build_report(&trace(6), &ReportConfig::default());
        let x = diff_reports(&a, &b, DEFAULT_EPSILON).to_json().render();
        let y = diff_reports(&a, &b, DEFAULT_EPSILON).to_json().render();
        assert_eq!(x, y);
    }

    #[test]
    fn ratio_table_marks_regressions_and_names_worst() {
        let rows = vec![
            RatioRow {
                name: "fast-kernel".into(),
                a: 2.0,
                b: 2.1,
            },
            RatioRow {
                name: "slow-kernel".into(),
                a: 2.0,
                b: 1.0,
            },
            RatioRow {
                name: "worse-kernel".into(),
                a: 2.0,
                b: 0.5,
            },
        ];
        let table = render_ratio_table(("kernel", "baseline", "current"), &rows, 0.1);
        assert!(table.contains("! slow-kernel"));
        assert!(table.contains("! worse-kernel"));
        assert!(table.contains("  fast-kernel"));
        let worst = worst_regression(&rows, 0.1).unwrap();
        assert_eq!(worst.name, "worse-kernel");
        assert!(worst_regression(&rows[..1], 0.1).is_none());
    }
}
