//! Traffic heatmap: message counts and byte volume per (src, dst) pair.
//!
//! Built from `msg-injected` events, so it is a *demand* matrix — what
//! the workload asked of the switch — independent of how well any
//! paradigm served it. Exportable as JSON (dense row-major matrices) and
//! CSV (sparse, one non-zero cell per line).

use pms_trace::{Json, TraceEvent, TraceRecord};

/// An N×N demand matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heatmap {
    /// Matrix dimension (source and destination port count).
    pub ports: usize,
    /// Row-major message counts: `msgs[src * ports + dst]`.
    pub msgs: Vec<u64>,
    /// Row-major byte volume: `bytes[src * ports + dst]`.
    pub bytes: Vec<u64>,
}

impl Heatmap {
    /// Messages injected for `src -> dst`.
    pub fn msg_count(&self, src: usize, dst: usize) -> u64 {
        self.msgs[src * self.ports + dst]
    }

    /// Bytes injected for `src -> dst`.
    pub fn byte_count(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.ports + dst]
    }

    /// Total messages across the matrix.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Total bytes across the matrix.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// (src, dst) pairs with any traffic, sorted hottest-first by bytes
    /// (ties broken by message count, then pair index for determinism).
    pub fn hottest(&self, n: usize) -> Vec<(usize, usize, u64, u64)> {
        let mut pairs: Vec<(usize, usize, u64, u64)> = (0..self.ports * self.ports)
            .filter(|&i| self.msgs[i] > 0)
            .map(|i| (i / self.ports, i % self.ports, self.msgs[i], self.bytes[i]))
            .collect();
        pairs.sort_by(|a, b| {
            b.3.cmp(&a.3)
                .then(b.2.cmp(&a.2))
                .then((a.0, a.1).cmp(&(b.0, b.1)))
        });
        pairs.truncate(n);
        pairs
    }

    /// Dense JSON: `{"ports":N,"msgs":[[..],..],"bytes":[[..],..]}`.
    pub fn to_json(&self) -> Json {
        let matrix = |data: &[u64]| {
            Json::Array(
                (0..self.ports)
                    .map(|u| {
                        Json::Array(
                            (0..self.ports)
                                .map(|v| data[u * self.ports + v].into())
                                .collect(),
                        )
                    })
                    .collect(),
            )
        };
        Json::obj([
            ("ports", self.ports.into()),
            ("total_msgs", self.total_msgs().into()),
            ("total_bytes", self.total_bytes().into()),
            ("msgs", matrix(&self.msgs)),
            ("bytes", matrix(&self.bytes)),
        ])
    }

    /// Sparse CSV: header plus one `src,dst,msgs,bytes` line per
    /// non-zero cell, in row-major order.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("src,dst,msgs,bytes\n");
        for u in 0..self.ports {
            for v in 0..self.ports {
                let i = u * self.ports + v;
                if self.msgs[i] > 0 {
                    out.push_str(&format!("{u},{v},{},{}\n", self.msgs[i], self.bytes[i]));
                }
            }
        }
        out
    }
}

/// Accumulates the demand matrix from an event stream.
pub fn heatmap(records: &[TraceRecord], ports: usize) -> Heatmap {
    let mut msgs = vec![0u64; ports * ports];
    let mut bytes = vec![0u64; ports * ports];
    for rec in records {
        if let TraceEvent::MsgInjected {
            src, dst, bytes: b, ..
        } = rec.event
        {
            let i = src as usize * ports + dst as usize;
            msgs[i] += 1;
            bytes[i] += b as u64;
        }
    }
    Heatmap { ports, msgs, bytes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inj(t: u64, src: u32, dst: u32, bytes: u32) -> TraceRecord {
        TraceRecord {
            t_ns: t,
            slot: 0,
            event: TraceEvent::MsgInjected {
                src,
                dst,
                bytes,
                msg: 0,
            },
        }
    }

    #[test]
    fn counts_and_bytes_accumulate() {
        let h = heatmap(&[inj(0, 0, 1, 64), inj(5, 0, 1, 64), inj(9, 2, 3, 512)], 4);
        assert_eq!(h.msg_count(0, 1), 2);
        assert_eq!(h.byte_count(0, 1), 128);
        assert_eq!(h.msg_count(2, 3), 1);
        assert_eq!(h.total_msgs(), 3);
        assert_eq!(h.total_bytes(), 640);
        assert_eq!(h.msg_count(1, 0), 0);
    }

    #[test]
    fn hottest_sorts_by_bytes() {
        let h = heatmap(&[inj(0, 0, 1, 64), inj(1, 2, 3, 512), inj(2, 1, 2, 64)], 4);
        let top = h.hottest(2);
        assert_eq!(top[0], (2, 3, 1, 512));
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn csv_is_sparse_with_header() {
        let h = heatmap(&[inj(0, 1, 2, 100)], 4);
        assert_eq!(h.to_csv(), "src,dst,msgs,bytes\n1,2,1,100\n");
    }

    #[test]
    fn json_matrices_are_dense() {
        let h = heatmap(&[inj(0, 0, 1, 8)], 2);
        let js = h.to_json().render();
        assert!(js.contains("\"msgs\":[[0,1],[0,0]]"), "{js}");
        assert!(js.contains("\"bytes\":[[0,8],[0,0]]"), "{js}");
    }
}
