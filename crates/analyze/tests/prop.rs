//! Property tests for the alert engine's determinism contract: the
//! alert event stream is a pure function of the trace plus the rules.
//! For random workloads, fault plans, and rule parameters, the
//! `AlertRaised`/`AlertCleared` records a live pipelined run emits must
//! be bit-identical to what JSONL round-tripping preserves AND to what
//! re-evaluating the same rules over the replayed snapshot stream
//! produces ([`pms_trace::replay_alerts`]).

use pms_analyze::parse_jsonl;
use pms_faults::{FaultKind, FaultPlan};
use pms_sim::{Paradigm, PredictorKind, SimParams};
use pms_trace::{
    record_json, replay_alerts, AlertRules, SnapshotConfig, TraceEvent, TraceRecord, Tracer,
    DEFAULT_WINDOW_SLOTS,
};
use pms_workloads::{Program, Workload};
use proptest::prelude::*;

const PORTS: usize = 8;

fn workload_strategy() -> impl Strategy<Value = Workload> {
    let cmd = prop_oneof![
        4 => (0..PORTS, prop::sample::select(vec![8u32, 64, 200, 512]))
            .prop_map(|(dst, bytes)| (Some(dst), bytes as u64)),
        1 => (1u64..2_000).prop_map(|ns| (None, ns)),
    ];
    prop::collection::vec(prop::collection::vec(cmd, 0..8), PORTS).prop_map(|proc_cmds| {
        let programs: Vec<Program> = proc_cmds
            .into_iter()
            .enumerate()
            .map(|(p, cmds)| {
                let mut prog = Program::new();
                for c in cmds {
                    match c {
                        (Some(dst), bytes) => {
                            let d = if dst == p { (dst + 1) % PORTS } else { dst };
                            prog.send(d, bytes as u32);
                        }
                        (None, ns) => {
                            prog.delay(ns);
                        }
                    }
                }
                prog
            })
            .collect();
        Workload::new("alert-prop", PORTS, programs)
    })
}

/// Random but always-parseable rules files exercising all three rule
/// kinds with varying thresholds and hysteresis.
fn rules_strategy() -> impl Strategy<Value = AlertRules> {
    (
        (1u64..6, 1u32..3, 1u32..3, 0u32..4), // value, for, clear-for, cooldown
        (1u32..4, 2u32..6),                   // anomaly z, warmup
        prop::sample::select(vec!["delivered", "retries", "established", "bytes"]),
    )
        .prop_map(
            |((value, for_n, clear_for, cooldown), (z, warmup), metric)| {
                let text = format!(
                    "threshold name=t metric={metric} op=ge value={value} for={for_n} \
                 clear-for={clear_for} cooldown={cooldown}\n\
                 rate name=r metric=delivered op=lt value=-2\n\
                 anomaly name=a metric=setup-max-ns z={z} warmup={warmup}\n"
                );
                AlertRules::parse(&text).expect("generated rules parse")
            },
        )
}

fn fault_plan(faulted: bool) -> FaultPlan {
    let mut plan = FaultPlan::new();
    if faulted {
        plan.push(300, 2_000, FaultKind::LinkDown { src: 1, dst: 2 })
            .push(0, 1_500, FaultKind::StuckGrant { src: 2, dst: 3 })
            .push(500, 800, FaultKind::NicTransient { port: 4 });
    }
    plan
}

fn alert_records(records: &[TraceRecord]) -> Vec<TraceRecord> {
    records
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                TraceEvent::AlertRaised { .. } | TraceEvent::AlertCleared { .. }
            )
        })
        .copied()
        .collect()
}

fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&record_json(r).render());
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same trace + same rules => identical alert event stream, live
    /// versus JSONL replay, for every paradigm with and without faults.
    #[test]
    fn alert_stream_is_identical_live_and_replayed(
        w in workload_strategy(),
        rules in rules_strategy(),
        faulted in 0u32..2,
    ) {
        let faulted = faulted == 1;
        let params = SimParams::default().with_ports(PORTS);
        let cfg = SnapshotConfig::per_slots(params.slot_ns, DEFAULT_WINDOW_SLOTS);
        let paradigms = [
            Paradigm::Wormhole,
            Paradigm::Circuit,
            Paradigm::DynamicTdm(PredictorKind::Timeout(300)),
            Paradigm::PreloadTdm,
        ];
        for p in paradigms {
            let tracer = Tracer::pipeline(cfg, Some(rules.clone()), Tracer::vec());
            let (_, tracer) = p.run_faulted(&w, &params, fault_plan(faulted), tracer);
            let live = tracer.records();
            let live_alerts = alert_records(&live);

            // Live reruns are bit-identical: the engine has no hidden state.
            let tracer2 = Tracer::pipeline(cfg, Some(rules.clone()), Tracer::vec());
            let (_, tracer2) = p.run_faulted(&w, &params, fault_plan(faulted), tracer2);
            prop_assert_eq!(
                &live_alerts,
                &alert_records(&tracer2.records()),
                "{}: live reruns disagree", p.label()
            );

            // The JSONL round trip preserves the alert stream exactly.
            let replay = parse_jsonl(&to_jsonl(&live))
                .unwrap_or_else(|e| panic!("{}: replay failed: {e}", p.label()));
            prop_assert_eq!(replay.skipped_unknown, 0, "{}", p.label());
            prop_assert_eq!(
                &live_alerts,
                &alert_records(&replay.records),
                "{}: round trip altered the alert stream", p.label()
            );

            // Re-evaluating the same rules over the replayed snapshot
            // stream regenerates the very same alert records.
            prop_assert_eq!(
                &live_alerts,
                &replay_alerts(&replay.records, &rules),
                "{}: replayed engine disagrees with live engine", p.label()
            );
        }
    }
}
