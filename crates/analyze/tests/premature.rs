//! Predictor-tuning signal end to end: an aggressive timeout predictor
//! must show a strictly higher premature-eviction rate than a generous
//! one on a workload with bursty reuse of the same connections.

use pms_analyze::{build_report, churn, ReportConfig};
use pms_sim::{Paradigm, PredictorKind, SimParams};
use pms_trace::Tracer;
use pms_workloads::{Program, Workload};

/// Every processor repeatedly sends to a fixed partner, with an idle gap
/// between sends that an aggressive timeout treats as abandonment.
fn bursty_reuse(ports: usize, rounds: usize, gap_ns: u64) -> Workload {
    let programs = (0..ports)
        .map(|p| {
            let mut prog = Program::new();
            for _ in 0..rounds {
                prog.send((p + 1) % ports, 256).delay(gap_ns);
            }
            prog
        })
        .collect();
    Workload::new("bursty-reuse", ports, programs)
}

fn premature_rate(timeout_ns: u64, workload: &Workload, params: &SimParams) -> (f64, u64) {
    let (_, tracer) = Paradigm::DynamicTdm(PredictorKind::Timeout(timeout_ns)).run_traced(
        workload,
        params,
        Tracer::vec(),
    );
    let report = churn(&tracer.records(), 5_000);
    (report.premature_rate(), report.total_evictions)
}

#[test]
fn aggressive_timeout_has_higher_premature_eviction_rate() {
    let workload = bursty_reuse(8, 24, 3_000);
    let params = SimParams::default().with_ports(8);

    // Evicts well inside the reuse gap: every eviction is premature.
    let (aggressive_rate, aggressive_evictions) = premature_rate(400, &workload, &params);
    // Outlives the gap: connections stay latched across rounds.
    let (generous_rate, _) = premature_rate(1_000_000, &workload, &params);

    assert!(
        aggressive_evictions > 0,
        "aggressive predictor never evicted; the workload gap is too short"
    );
    assert!(
        aggressive_rate > generous_rate,
        "aggressive rate {aggressive_rate} not above generous rate {generous_rate}"
    );
}

#[test]
fn full_report_carries_the_same_signal() {
    let workload = bursty_reuse(8, 24, 3_000);
    let params = SimParams::default().with_ports(8);
    let (_, tracer) = Paradigm::DynamicTdm(PredictorKind::Timeout(400)).run_traced(
        &workload,
        &params,
        Tracer::vec(),
    );
    let report = build_report(&tracer.records(), &ReportConfig::default());
    assert_eq!(report.ports, 8);
    assert!(report.churn.total_evictions > 0);
    assert!(report.churn.premature_rate() > 0.0);
    let timeout = report
        .churn
        .by_cause
        .iter()
        .find(|c| c.cause == "timeout")
        .unwrap();
    assert!(timeout.premature > 0);
    // The demand matrix matches the workload shape: each port sends only
    // to its fixed partner.
    for p in 0..8usize {
        assert_eq!(report.heatmap.msg_count(p, (p + 1) % 8), 24);
    }
}
