//! # pms — Predictive Multiplexed Switching
//!
//! Reproduction of *"Switch Design to Enable Predictive Multiplexed
//! Switching in Multiprocessor Networks"* (IPPS 2005). This root crate
//! re-exports [`pms_core`] — see the README for the architecture overview
//! and `EXPERIMENTS.md` for the paper-versus-measured record.
//!
//! ```
//! use pms::{SystemBuilder, Paradigm, PredictorKind, SimParams};
//! use pms::workloads::scatter;
//!
//! // Hardware-level API: drive a switch directly.
//! let mut sys = SystemBuilder::new(8).slots(4).build();
//! sys.request(0, 5);
//! sys.sl_pass();
//! assert!(sys.established(0, 5));
//!
//! // Evaluation API: simulate a full workload under a paradigm.
//! let stats = Paradigm::DynamicTdm(PredictorKind::Drop)
//!     .run(&scatter(8, 64), &SimParams::default().with_ports(8));
//! assert_eq!(stats.delivered_messages, 7);
//! ```

#![forbid(unsafe_code)]

pub use pms_analyze as analyze;
pub use pms_core::*;
pub use pms_faults as faults;
